"""Per-app workload profiles for personal devices.

§2.3.2 (citing Zhang et al., MobiSys '19: "Apps can quickly destroy your
mobile's flash: why they don't"): under typical usage users consume only
a small fraction (~5%) of their phone flash's endurance during the
warranty period, and "most write-intensive apps are unlikely to be
utilized for remotely long enough periods (e.g., playing Final Fantasy
for 9 hours daily) as to prematurely wear out the underlying storage".

Profiles below synthesize daily write/read volumes and the file kinds
each app produces.  Volumes are calibrated to that study's regime: a
*typical* mix writes a few GB/day against a 64-128 GB device; the
stress profile reproduces the study's adversarial games/apps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.files import FileKind

__all__ = ["AppProfile", "APP_PROFILES", "USER_MIXES", "daily_write_gb"]


@dataclass(frozen=True, slots=True)
class AppProfile:
    """Daily I/O behaviour of one app category.

    Attributes
    ----------
    name:
        App category.
    write_mb_per_day:
        Mean new/overwritten data per active day.
    media_fraction:
        Fraction of written bytes that are media files (write-once).
    produces:
        File kinds this app creates, with weights.
    overwrite_fraction:
        Fraction of written bytes that overwrite existing data in place
        (databases, caches) rather than creating new files.
    read_mb_per_day:
        Mean bytes read per active day.
    """

    name: str
    write_mb_per_day: float
    media_fraction: float
    produces: dict[FileKind, float]
    overwrite_fraction: float
    read_mb_per_day: float


APP_PROFILES: dict[str, AppProfile] = {
    "camera": AppProfile(
        name="camera",
        write_mb_per_day=600.0,
        media_fraction=0.98,
        produces={FileKind.PHOTO: 0.7, FileKind.VIDEO: 0.3},
        overwrite_fraction=0.01,
        read_mb_per_day=300.0,
    ),
    "messaging": AppProfile(
        name="messaging",
        write_mb_per_day=250.0,
        media_fraction=0.8,
        produces={FileKind.MESSAGE_MEDIA: 0.85, FileKind.APP_METADATA: 0.15},
        overwrite_fraction=0.15,
        read_mb_per_day=400.0,
    ),
    "social": AppProfile(
        name="social",
        write_mb_per_day=500.0,
        media_fraction=0.6,
        produces={FileKind.MESSAGE_MEDIA: 0.5, FileKind.PHOTO: 0.2, FileKind.APP_METADATA: 0.3},
        overwrite_fraction=0.35,
        read_mb_per_day=1500.0,
    ),
    "browser": AppProfile(
        name="browser",
        write_mb_per_day=300.0,
        media_fraction=0.2,
        produces={FileKind.DOWNLOAD: 0.4, FileKind.APP_METADATA: 0.6},
        overwrite_fraction=0.5,
        read_mb_per_day=800.0,
    ),
    "music": AppProfile(
        name="music",
        write_mb_per_day=150.0,
        media_fraction=0.9,
        produces={FileKind.AUDIO: 0.9, FileKind.APP_METADATA: 0.1},
        overwrite_fraction=0.05,
        read_mb_per_day=1200.0,
    ),
    "game": AppProfile(
        name="game",
        write_mb_per_day=400.0,
        media_fraction=0.1,
        produces={FileKind.APP_METADATA: 0.8, FileKind.DOWNLOAD: 0.2},
        overwrite_fraction=0.7,
        read_mb_per_day=600.0,
    ),
    "system": AppProfile(
        name="system",
        write_mb_per_day=350.0,
        media_fraction=0.0,
        produces={FileKind.OS_SYSTEM: 0.2, FileKind.APP_EXECUTABLE: 0.3, FileKind.APP_METADATA: 0.5},
        overwrite_fraction=0.6,
        read_mb_per_day=2000.0,
    ),
    "office": AppProfile(
        name="office",
        write_mb_per_day=60.0,
        media_fraction=0.0,
        produces={FileKind.DOCUMENT: 0.8, FileKind.APP_METADATA: 0.2},
        overwrite_fraction=0.4,
        read_mb_per_day=120.0,
    ),
    # Zhang et al.'s adversarial case: a write-hammering game played for
    # many hours daily ("playing Final Fantasy for 9 hours daily").
    "stress_game": AppProfile(
        name="stress_game",
        write_mb_per_day=40_000.0,
        media_fraction=0.0,
        produces={FileKind.APP_METADATA: 1.0},
        overwrite_fraction=0.95,
        read_mb_per_day=10_000.0,
    ),
}

#: User intensity mixes: app -> activity factor (1.0 = profile nominal).
USER_MIXES: dict[str, dict[str, float]] = {
    "light": {
        "camera": 0.3, "messaging": 0.6, "social": 0.4, "browser": 0.5,
        "music": 0.3, "game": 0.1, "system": 1.0, "office": 0.2,
    },
    "typical": {
        "camera": 1.0, "messaging": 1.0, "social": 1.0, "browser": 1.0,
        "music": 1.0, "game": 0.5, "system": 1.0, "office": 0.5,
    },
    "heavy": {
        "camera": 2.5, "messaging": 2.0, "social": 2.5, "browser": 2.0,
        "music": 1.5, "game": 2.0, "system": 1.2, "office": 1.0,
    },
    "adversarial": {
        "camera": 1.0, "messaging": 1.0, "social": 1.0, "browser": 1.0,
        "music": 1.0, "game": 1.0, "system": 1.0, "office": 0.5,
        "stress_game": 1.0,
    },
}


def daily_write_gb(mix_name: str) -> float:
    """Total mean write volume (GB/day) of a user mix."""
    mix = USER_MIXES[mix_name]
    total_mb = sum(
        APP_PROFILES[app].write_mb_per_day * factor for app, factor in mix.items()
    )
    return total_mb / 1024.0
