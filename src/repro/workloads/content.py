"""Synthetic file content with kind-appropriate compressibility.

§5 (related work): "Data reduction methods (e.g., compression) often
used in enterprise storage are less effective in personal storage"
[Ji et al., Yen et al., Zuck et al. INFLOW '14].  The reason is content:
personal bytes are dominated by already-compressed media (JPEG/HEVC/AAC
streams are near-uniform-random to a second compressor), while the
compressible minority (SQLite, JSON, text) is small.

This module generates content matching those profiles so data-reduction
experiments measure realistic savings:

* media kinds -> high-entropy bytes (residual compressibility ~2-5%);
* app metadata / documents -> low-entropy structured text with heavy
  repetition (compresses 60-80%);
* downloads -> mixed, plus exact-duplicate blocks (dedup fodder).
"""

from __future__ import annotations

import numpy as np

from repro.host.files import FileKind, MEDIA_KINDS

__all__ = ["generate_content", "COMPRESSIBILITY_CLASS"]

#: Qualitative compressibility class per kind (documentation + tests).
COMPRESSIBILITY_CLASS: dict[FileKind, str] = {
    FileKind.OS_SYSTEM: "binary",
    FileKind.APP_EXECUTABLE: "binary",
    FileKind.APP_METADATA: "structured",
    FileKind.DOCUMENT: "structured",
    FileKind.PHOTO: "media",
    FileKind.VIDEO: "media",
    FileKind.AUDIO: "media",
    FileKind.DOWNLOAD: "mixed",
    FileKind.MESSAGE_MEDIA: "media",
}

_STRUCTURED_VOCAB = [
    b'{"key": "value", "timestamp": 1680000000, "user": "owner"}',
    b"INSERT INTO messages (id, sender, body) VALUES ",
    b"<dict><key>CFBundleIdentifier</key><string>com.app.",
    b"the quick brown fox jumps over the lazy dog. ",
    b"GET /api/v1/sync?device=phone&cursor=",
]


def _media_bytes(rng: np.random.Generator, size: int) -> bytes:
    """Near-incompressible: uniform bytes with sparse structural markers."""
    data = rng.integers(0, 256, size=size, dtype=np.uint8)
    # sprinkle codec sync markers (tiny compressible residue, like real
    # container framing)
    for offset in range(0, size - 4, 4096):
        data[offset:offset + 4] = (0, 0, 1, 0xB6)
    return data.tobytes()


def _structured_bytes(rng: np.random.Generator, size: int) -> bytes:
    """Highly repetitive structured text (databases, prefs, documents)."""
    out = bytearray()
    while len(out) < size:
        template = _STRUCTURED_VOCAB[int(rng.integers(0, len(_STRUCTURED_VOCAB)))]
        out.extend(template)
        out.extend(str(int(rng.integers(0, 10_000))).encode())
        out.extend(b"\n")
    return bytes(out[:size])


def _binary_bytes(rng: np.random.Generator, size: int) -> bytes:
    """Executable-like: moderately compressible (opcode repetition)."""
    # small alphabet with skewed distribution compresses ~30-50%
    alphabet = rng.integers(0, 256, size=64, dtype=np.uint8)
    indices = rng.choice(64, size=size, p=_zipf_probs(64))
    return alphabet[indices].tobytes()


def _zipf_probs(n: int) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    probs = 1.0 / ranks
    return probs / probs.sum()


def generate_content(kind: FileKind, size: int, rng: np.random.Generator) -> bytes:
    """Content of ``size`` bytes with the kind's compressibility profile."""
    if size <= 0:
        return b""
    klass = COMPRESSIBILITY_CLASS[kind]
    if klass == "media":
        return _media_bytes(rng, size)
    if klass == "structured":
        return _structured_bytes(rng, size)
    if klass == "binary":
        return _binary_bytes(rng, size)
    # mixed: half media-like, half structured
    half = size // 2
    return _media_bytes(rng, half) + _structured_bytes(rng, size - half)
