"""Synthetic personal-device workloads and trace handling.

App profiles calibrated to the mobile-wear literature the paper cites,
user-intensity mixes (light/typical/heavy/adversarial), a generator
producing both epoch aggregates and replayable op traces, and JSON
trace (de)serialization.
"""

from .apps import APP_PROFILES, USER_MIXES, AppProfile, daily_write_gb
from .content import COMPRESSIBILITY_CLASS, generate_content
from .mobile import MobileWorkload, WorkloadConfig
from .traces import DailySummary, OpKind, TraceOp, load_trace, save_trace

__all__ = [
    "APP_PROFILES",
    "USER_MIXES",
    "AppProfile",
    "daily_write_gb",
    "COMPRESSIBILITY_CLASS",
    "generate_content",
    "MobileWorkload",
    "WorkloadConfig",
    "DailySummary",
    "OpKind",
    "TraceOp",
    "load_trace",
    "save_trace",
]
