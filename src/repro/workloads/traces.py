"""Trace format: operations and daily aggregates, record/replay.

Two granularities, matching the two simulation fidelities:

* :class:`TraceOp` -- a single host operation (create/overwrite/read/
  delete), replayable against the bit-exact :class:`~repro.core.SOSDevice`;
* :class:`DailySummary` -- per-day aggregate volumes, consumed by the
  epoch-level lifetime model.

Both serialize to plain dicts so traces can be saved/loaded as JSON.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.host.files import FileKind

__all__ = ["OpKind", "TraceOp", "DailySummary", "save_trace", "load_trace"]


class OpKind(enum.Enum):
    """Host operation type."""

    CREATE = "create"
    OVERWRITE = "overwrite"
    READ = "read"
    DELETE = "delete"


@dataclass(frozen=True, slots=True)
class TraceOp:
    """One host operation."""

    day: int
    kind: OpKind
    path: str
    file_kind: FileKind
    size_bytes: int
    #: for CREATE: whether the file has a cloud copy
    cloud_backed: bool = False

    def to_dict(self) -> dict:
        """JSON-safe dict form."""
        d = asdict(self)
        d["kind"] = self.kind.value
        d["file_kind"] = self.file_kind.value
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TraceOp":
        """Inverse of :meth:`to_dict`."""
        return cls(
            day=d["day"],
            kind=OpKind(d["kind"]),
            path=d["path"],
            file_kind=FileKind(d["file_kind"]),
            size_bytes=d["size_bytes"],
            cloud_backed=d.get("cloud_backed", False),
        )


@dataclass(frozen=True, slots=True)
class DailySummary:
    """Aggregate host I/O volumes for one simulated day (GB)."""

    day: int
    new_media_gb: float
    new_other_gb: float
    overwrite_gb: float
    read_gb: float
    delete_gb: float

    @property
    def total_write_gb(self) -> float:
        """All bytes written this day."""
        return self.new_media_gb + self.new_other_gb + self.overwrite_gb


def save_trace(ops: list[TraceOp], path: str | Path) -> None:
    """Serialize a trace to JSON."""
    Path(path).write_text(json.dumps([op.to_dict() for op in ops]))


def load_trace(path: str | Path) -> list[TraceOp]:
    """Load a trace saved by :func:`save_trace`."""
    return [TraceOp.from_dict(d) for d in json.loads(Path(path).read_text())]
