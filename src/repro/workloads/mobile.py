"""Synthetic mobile workload generator.

Drives both simulation fidelities from one stochastic model: per-day
volumes are sampled per app (log-normal day-to-day jitter around the
profile means), media files are write-once/read-many, app data churns in
place, and a steady trickle of deletions keeps utilization roughly
stationary once the device fills to its working set.

Calibration target (§2.3.2 / Zhang et al.): a *typical* mix writes
~2-3 GB/day; against a 64 GB TLC device over a 2-year warranty this
consumes a low-single-digit percentage of rated endurance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.host.files import FileKind, MEDIA_KINDS

from .apps import APP_PROFILES, USER_MIXES, AppProfile
from .traces import DailySummary, OpKind, TraceOp

__all__ = ["WorkloadConfig", "MobileWorkload"]


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """Workload generation parameters.

    Attributes
    ----------
    mix:
        Key into :data:`~repro.workloads.apps.USER_MIXES`.
    days:
        Simulated span.
    daily_jitter_sigma:
        Log-normal sigma for day-to-day volume variation.
    delete_fraction:
        Fraction of the day's new bytes eventually matched by deletions
        (steady-state churn).
    cloud_backup_probability:
        Probability a new media file has a cloud copy (§4.3 notes many
        users back up media).
    seed:
        RNG seed.
    """

    mix: str = "typical"
    days: int = 730
    daily_jitter_sigma: float = 0.35
    delete_fraction: float = 0.5
    cloud_backup_probability: float = 0.6
    seed: int = 0


class MobileWorkload:
    """Generates daily summaries and (optionally) op-level traces."""

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        self.config = config or WorkloadConfig()
        if self.config.mix not in USER_MIXES:
            raise ValueError(f"unknown user mix {self.config.mix!r}")
        self._rng = np.random.default_rng(self.config.seed)
        self._mix = USER_MIXES[self.config.mix]

    # -- epoch-level ---------------------------------------------------------

    def daily_summaries(self) -> list[DailySummary]:
        """Per-day aggregate volumes over the configured span."""
        out = []
        for day in range(self.config.days):
            media = other = overwrite = read = 0.0
            for app_name, factor in self._mix.items():
                profile = APP_PROFILES[app_name]
                vol_mb = self._day_volume_mb(profile, factor)
                ow = vol_mb * profile.overwrite_fraction
                fresh = vol_mb - ow
                media += fresh * profile.media_fraction
                other += fresh * (1.0 - profile.media_fraction)
                overwrite += ow
                read += self._day_read_mb(profile, factor)
            delete = (media + other) * self.config.delete_fraction
            out.append(
                DailySummary(
                    day=day,
                    new_media_gb=media / 1024.0,
                    new_other_gb=other / 1024.0,
                    overwrite_gb=overwrite / 1024.0,
                    read_gb=read / 1024.0,
                    delete_gb=delete / 1024.0,
                )
            )
        return out

    def daily_volume_arrays(self) -> dict[str, np.ndarray]:
        """Vectorized :meth:`daily_summaries`: one array per volume field.

        Returns ``{"day", "new_media_gb", "new_other_gb", "overwrite_gb",
        "read_gb", "delete_gb"}``, each of shape ``(days,)``, bit-identical
        to the scalar generator's per-day values.  Identity holds because
        ``Generator.lognormal(size=k)`` consumes the bit stream exactly
        like ``k`` scalar draws, the scalar loop draws per (day, app) in
        (write, read) order -- the C-order ravel of a ``(days, apps, 2)``
        block -- and the per-app accumulation below preserves the scalar
        loop's addition order elementwise.

        Consumes the same RNG state as :meth:`daily_summaries`; use a
        fresh workload instance per call, as the batched lifetime path
        does (one instance per simulated device).
        """
        days = self.config.days
        apps = list(self._mix.items())
        jitter = self._rng.lognormal(0.0, self.config.daily_jitter_sigma,
                                     size=(days, len(apps), 2))
        media = np.zeros(days)
        other = np.zeros(days)
        overwrite = np.zeros(days)
        read = np.zeros(days)
        for j, (app_name, factor) in enumerate(apps):
            profile = APP_PROFILES[app_name]
            vol_mb = profile.write_mb_per_day * factor * jitter[:, j, 0]
            ow = vol_mb * profile.overwrite_fraction
            fresh = vol_mb - ow
            media += fresh * profile.media_fraction
            other += fresh * (1.0 - profile.media_fraction)
            overwrite += ow
            read += profile.read_mb_per_day * factor * jitter[:, j, 1]
        delete = (media + other) * self.config.delete_fraction
        return {
            "day": np.arange(days, dtype=np.int64),
            "new_media_gb": media / 1024.0,
            "new_other_gb": other / 1024.0,
            "overwrite_gb": overwrite / 1024.0,
            "read_gb": read / 1024.0,
            "delete_gb": delete / 1024.0,
        }

    def _day_volume_mb(self, profile: AppProfile, factor: float) -> float:
        jitter = self._rng.lognormal(0.0, self.config.daily_jitter_sigma)
        return profile.write_mb_per_day * factor * jitter

    def _day_read_mb(self, profile: AppProfile, factor: float) -> float:
        jitter = self._rng.lognormal(0.0, self.config.daily_jitter_sigma)
        return profile.read_mb_per_day * factor * jitter

    # -- op-level ----------------------------------------------------------------

    def ops(
        self,
        scale_bytes: float = 1.0,
        files_per_day: int = 6,
        delete_rate: float = 0.002,
    ) -> list[TraceOp]:
        """Expand the workload into replayable operations.

        Parameters
        ----------
        scale_bytes:
            Multiplier on file sizes (use << 1 to drive the bit-exact
            small-geometry device).
        files_per_day:
            New files created per day (sizes apportioned from the day's
            volumes).
        delete_rate:
            Fraction of live files deleted per day (oldest first); raise
            it when replaying against small devices so the working set
            stays stationary.
        """
        ops: list[TraceOp] = []
        live_paths: list[tuple[str, FileKind, int]] = []
        counter = 0
        for summary in self.daily_summaries():
            day = summary.day
            new_gb = summary.new_media_gb + summary.new_other_gb
            media_share = summary.new_media_gb / new_gb if new_gb else 0.0
            for _ in range(files_per_day):
                counter += 1
                is_media = self._rng.random() < media_share
                kind = self._pick_kind(is_media)
                size = max(
                    256,
                    int(new_gb * 1e9 / files_per_day * scale_bytes),
                )
                path = f"/user/{kind.value}/{counter:07d}"
                ops.append(
                    TraceOp(
                        day=day,
                        kind=OpKind.CREATE,
                        path=path,
                        file_kind=kind,
                        size_bytes=size,
                        cloud_backed=is_media
                        and self._rng.random() < self.config.cloud_backup_probability,
                    )
                )
                live_paths.append((path, kind, size))
            # overwrites hit app metadata in place
            if summary.overwrite_gb > 0:
                ops.append(
                    TraceOp(
                        day=day,
                        kind=OpKind.OVERWRITE,
                        path="/user/app_metadata/churn",
                        file_kind=FileKind.APP_METADATA,
                        size_bytes=max(256, int(summary.overwrite_gb * 1e9 * scale_bytes)),
                    )
                )
            # reads spread over live files
            if live_paths:
                idx = int(self._rng.integers(0, len(live_paths)))
                path, kind, size = live_paths[idx]
                ops.append(
                    TraceOp(day=day, kind=OpKind.READ, path=path, file_kind=kind, size_bytes=size)
                )
            # deletions: drop oldest files to approximate churn
            ndelete = int(len(live_paths) * delete_rate)
            for _ in range(ndelete):
                path, kind, size = live_paths.pop(0)
                ops.append(
                    TraceOp(day=day, kind=OpKind.DELETE, path=path, file_kind=kind, size_bytes=size)
                )
        return ops

    def _pick_kind(self, is_media: bool) -> FileKind:
        if is_media:
            kinds = [FileKind.PHOTO, FileKind.VIDEO, FileKind.AUDIO, FileKind.MESSAGE_MEDIA]
            weights = np.array([0.45, 0.2, 0.1, 0.25])
        else:
            kinds = [FileKind.DOCUMENT, FileKind.DOWNLOAD, FileKind.APP_METADATA]
            weights = np.array([0.3, 0.3, 0.4])
        return kinds[self._rng.choice(len(kinds), p=weights / weights.sum())]
