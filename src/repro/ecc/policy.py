"""Named ECC protection policies used by SOS partitions.

The paper's §4.2 distinguishes two protection regimes:

* **SYS** blocks are "stored conservatively with additional redundancy
  (e.g., parity)" -- we model this as strong BCH plus a block-level parity
  page (RAID-5-style across the block);
* **SPARE** blocks use "weak protection (e.g., no ECC)" -- we model a
  spectrum: NONE, WEAK (Hamming-class, t=1), and, for ablation, the same
  STRONG code used on SYS.

A policy bundles the analytic :class:`~repro.ecc.model.CodewordSpec` used
by lifetime sims with a factory for the bit-exact codec used in
small-scale experiments, so both fidelities apply identical protection.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass

import numpy as np

from .bch import BCHCode
from .hamming import HammingSecDed
from .model import (
    CodewordSpec,
    page_failure_prob,
    page_failure_prob_many,
    residual_ber,
    residual_ber_many,
)

__all__ = ["ProtectionLevel", "ProtectionPolicy", "POLICIES"]


class ProtectionLevel(enum.Enum):
    """Spectrum of per-page protection strengths."""

    NONE = "none"
    WEAK = "weak"
    STRONG = "strong"


@functools.lru_cache(maxsize=None)
def _bch_codec(m: int, t: int) -> BCHCode:
    """Shared bit-exact BCH instance per ``(m, t)``.

    Construction runs the generator-polynomial build over GF(2^m) --
    milliseconds of work that ``make_codec`` callers would otherwise
    repeat per partition per run.  BCHCode is immutable after
    ``__init__`` (encode/decode are pure), so one instance is safe to
    share across every policy and thread.
    """
    return BCHCode(m=m, t=t)


@dataclass(frozen=True, slots=True)
class ProtectionPolicy:
    """One protection operating point.

    Attributes
    ----------
    level:
        Named strength.
    spec:
        Analytic codeword shape for the lifetime model.
    block_parity:
        Whether a block-level parity page is reserved (SYS redundancy);
        costs one page per block and recovers any single failed page.
    """

    level: ProtectionLevel
    spec: CodewordSpec
    block_parity: bool = False

    def make_codec(self) -> BCHCode | HammingSecDed | None:
        """Bit-exact codec matching :attr:`spec` (None for unprotected)."""
        if self.level is ProtectionLevel.NONE:
            return None
        if self.level is ProtectionLevel.WEAK:
            return HammingSecDed(r=6)  # n=64, k=57, t=1
        return _bch_codec(m=10, t=8)  # n=1023, k=943, t=8

    def page_failure_prob(self, rber: float, page_bits: int) -> float:
        """P(page uncorrectable) for a page of ``page_bits`` at ``rber``."""
        if self.level is ProtectionLevel.NONE:
            # no ECC: a page "fails" only in the sense of carrying errors;
            # callers treat residual BER, not failure, as the signal
            return 0.0
        codewords = max(1, page_bits // self.spec.k)
        return page_failure_prob(self.spec, rber, codewords)

    def page_failure_prob_many(self, rber: np.ndarray, page_bits: int) -> np.ndarray:
        """Vectorized :meth:`page_failure_prob` over an RBER array."""
        if self.level is ProtectionLevel.NONE:
            return np.zeros_like(np.asarray(rber, dtype=float))
        codewords = max(1, page_bits // self.spec.k)
        return page_failure_prob_many(self.spec, rber, codewords)

    def residual_ber(self, rber: float) -> float:
        """Application-visible bit error rate after this protection."""
        return residual_ber(self.spec, rber)

    def residual_ber_many(self, rber: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`residual_ber` over an RBER array."""
        return residual_ber_many(self.spec, rber)

    @property
    def capacity_overhead(self) -> float:
        """Fraction of raw capacity consumed by parity (codeword + block)."""
        cw = (self.spec.n - self.spec.k) / self.spec.n
        return cw if not self.block_parity else cw + (1.0 - cw) * (1.0 / 64.0)


#: Canonical policy instances.  WEAK mirrors HammingSecDed(r=6); STRONG
#: mirrors BCH(m=10, t=8); NONE is a degenerate t=0 "code".
POLICIES: dict[ProtectionLevel, ProtectionPolicy] = {
    ProtectionLevel.NONE: ProtectionPolicy(
        ProtectionLevel.NONE, CodewordSpec(n=1024, k=1024, t=0)
    ),
    ProtectionLevel.WEAK: ProtectionPolicy(
        ProtectionLevel.WEAK, CodewordSpec(n=64, k=57, t=1)
    ),
    ProtectionLevel.STRONG: ProtectionPolicy(
        ProtectionLevel.STRONG, CodewordSpec(n=1023, k=943, t=8), block_parity=True
    ),
}
