"""Binary BCH encoder/decoder.

Real, bit-exact BCH(n, k, t) over GF(2^m) with n = 2^m - 1:

* generator polynomial built as the LCM of minimal polynomials of
  alpha, alpha^2, ..., alpha^{2t};
* systematic encoding by polynomial division;
* decoding via syndromes, Berlekamp-Massey, and Chien search.

SSD controllers protect each page with BCH (or LDPC) of a strength chosen
to hit a target uncorrectable-bit-error-rate; SOS's "approximate storage"
(§4.2) deliberately weakens or removes this protection on SPARE data.
This module provides the bit-exact codec used by small-scale experiments;
:mod:`repro.ecc.model` provides the closed-form failure probability used
by lifetime sims, and the two are cross-validated in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gf import GF2m

__all__ = ["BCHCode", "DecodeResult", "DecodeFailure"]


class DecodeFailure(Exception):
    """Raised when the received word has more errors than the code corrects."""


@dataclass(frozen=True, slots=True)
class DecodeResult:
    """Outcome of a successful BCH decode."""

    data_bits: np.ndarray
    corrected_errors: int


class BCHCode:
    """A binary BCH code with codeword length ``2^m - 1`` and strength ``t``.

    Parameters
    ----------
    m:
        Field size; codeword length is ``n = 2^m - 1`` bits.
    t:
        Number of correctable bit errors per codeword.
    """

    def __init__(self, m: int, t: int) -> None:
        if t < 1:
            raise ValueError("t must be >= 1")
        self.field = GF2m(m)
        self.n = self.field.order
        self.t = t
        self.generator = self._build_generator()
        self.n_parity = len(self.generator) - 1
        self.k = self.n - self.n_parity
        if self.k <= 0:
            raise ValueError(f"BCH(m={m}, t={t}) leaves no data bits (k={self.k})")

    def _build_generator(self) -> list[int]:
        """LCM of minimal polynomials of alpha^1 .. alpha^{2t}."""
        gf = self.field
        seen_roots: set[int] = set()
        gen = [1]
        for i in range(1, 2 * self.t + 1):
            root = gf.alpha_pow(i)
            if root in seen_roots:
                continue
            # record the whole conjugacy class as covered
            e = root
            while e not in seen_roots:
                seen_roots.add(e)
                e = gf.mul(e, e)
            gen = gf.poly_mul(gen, gf.minimal_polynomial(root))
        return gen

    # -- encode ------------------------------------------------------------

    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        """Systematically encode ``k`` data bits into an ``n``-bit codeword.

        Codeword layout: ``[parity (n-k) | data (k)]`` (data bits occupy
        the high-degree coefficients, the usual systematic arrangement).
        """
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        if data_bits.size != self.k:
            raise ValueError(f"expected {self.k} data bits, got {data_bits.size}")
        # message polynomial * x^(n-k), then remainder mod generator
        remainder = np.zeros(self.n_parity, dtype=np.uint8)
        gen = np.array(self.generator, dtype=np.uint8)
        # synthetic division over GF(2), processing data from the highest
        # degree coefficient down
        for bit in data_bits[::-1]:
            feedback = bit ^ remainder[-1]
            remainder[1:] = remainder[:-1]
            remainder[0] = 0
            if feedback:
                remainder ^= gen[:-1] * feedback
        codeword = np.concatenate([remainder, data_bits]).astype(np.uint8)
        return codeword

    # -- decode ------------------------------------------------------------

    def decode(self, received: np.ndarray) -> DecodeResult:
        """Decode an ``n``-bit received word, correcting up to ``t`` errors.

        Raises
        ------
        DecodeFailure
            If more than ``t`` errors are present (detected), or the error
            locator does not factor over the field.
        """
        received = np.asarray(received, dtype=np.uint8)
        if received.size != self.n:
            raise ValueError(f"expected {self.n} bits, got {received.size}")
        syndromes = self._syndromes(received)
        if all(s == 0 for s in syndromes):
            return DecodeResult(data_bits=received[self.n_parity:].copy(), corrected_errors=0)
        locator = self._berlekamp_massey(syndromes)
        nerrors = len(locator) - 1
        if nerrors > self.t:
            raise DecodeFailure(f"error locator degree {nerrors} exceeds t={self.t}")
        positions = self._chien_search(locator)
        if len(positions) != nerrors:
            raise DecodeFailure("error locator polynomial does not fully factor")
        corrected = received.copy()
        for pos in positions:
            corrected[pos] ^= 1
        # verify: syndromes of the corrected word must vanish
        if any(s != 0 for s in self._syndromes(corrected)):
            raise DecodeFailure("correction failed verification")
        return DecodeResult(data_bits=corrected[self.n_parity:].copy(), corrected_errors=nerrors)

    def _syndromes(self, word: np.ndarray) -> list[int]:
        gf = self.field
        nonzero = np.nonzero(word)[0]
        syndromes = []
        for i in range(1, 2 * self.t + 1):
            s = 0
            for pos in nonzero:
                s ^= gf.alpha_pow(i * int(pos))
            syndromes.append(s)
        return syndromes

    def _berlekamp_massey(self, syndromes: list[int]) -> list[int]:
        """Error-locator polynomial (lowest degree first) via BM."""
        gf = self.field
        c = [1]  # current locator
        b = [1]  # previous locator
        l, m_gap, bb = 0, 1, 1
        for n_idx in range(2 * self.t):
            # discrepancy
            d = syndromes[n_idx]
            for i in range(1, l + 1):
                if i < len(c) and c[i]:
                    d ^= gf.mul(c[i], syndromes[n_idx - i])
            if d == 0:
                m_gap += 1
            elif 2 * l <= n_idx:
                temp = c[:]
                coef = gf.div(d, bb)
                shifted = [0] * m_gap + [gf.mul(coef, x) for x in b]
                c = [
                    (c[i] if i < len(c) else 0) ^ (shifted[i] if i < len(shifted) else 0)
                    for i in range(max(len(c), len(shifted)))
                ]
                l = n_idx + 1 - l
                b = temp
                bb = d
                m_gap = 1
            else:
                coef = gf.div(d, bb)
                shifted = [0] * m_gap + [gf.mul(coef, x) for x in b]
                c = [
                    (c[i] if i < len(c) else 0) ^ (shifted[i] if i < len(shifted) else 0)
                    for i in range(max(len(c), len(shifted)))
                ]
                m_gap += 1
        # trim trailing zeros
        while len(c) > 1 and c[-1] == 0:
            c.pop()
        return c

    def _chien_search(self, locator: list[int]) -> list[int]:
        """Positions of errors: roots alpha^{-i} of the locator."""
        gf = self.field
        positions = []
        for i in range(self.n):
            x = gf.alpha_pow(-i % gf.order)
            if gf.poly_eval(locator, x) == 0:
                positions.append(i)
        return positions
