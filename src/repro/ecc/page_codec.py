"""Page-level application of a protection policy.

SSD controllers split each physical page into interleaved ECC codewords.
:class:`PageCodec` reproduces that: it packs a byte payload into codeword
data fields, encodes each, and lays the codewords out across the page.
On read it decodes every codeword, counting corrections and uncorrectable
words, and returns a best-effort payload -- uncorrectable words pass their
(possibly corrupted) data bits through, which is precisely the behaviour
approximate storage relies on (§4.2: errors reach the application and the
application tolerates them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bch import BCHCode, DecodeFailure
from .hamming import HammingSecDed
from .policy import ProtectionLevel, ProtectionPolicy

__all__ = ["PageCodec", "PageReadResult"]


@dataclass(frozen=True, slots=True)
class PageReadResult:
    """Outcome of decoding one page."""

    payload: bytes
    corrected_bits: int
    uncorrectable_codewords: int

    @property
    def clean(self) -> bool:
        """True when every codeword decoded successfully."""
        return self.uncorrectable_codewords == 0


class PageCodec:
    """Encode/decode byte payloads onto fixed-size flash pages.

    Parameters
    ----------
    policy:
        Protection policy; determines codec and payload capacity.
    page_size_bytes:
        Physical page size the encoded output must fit.
    """

    def __init__(self, policy: ProtectionPolicy, page_size_bytes: int) -> None:
        self.policy = policy
        self.page_size_bytes = page_size_bytes
        self._codec = policy.make_codec()
        page_bits = page_size_bytes * 8
        if self._codec is None:
            self._codewords = 0
            self.payload_bytes = page_size_bytes
        else:
            n, k = self._codec.n, self._codec.k
            self._codewords = page_bits // n
            if self._codewords == 0:
                raise ValueError(
                    f"page of {page_bits} bits cannot hold a single {n}-bit codeword"
                )
            self.payload_bytes = (self._codewords * k) // 8

    @property
    def transparent(self) -> bool:
        """True when the policy applies no codec (payload passes through).

        Transparent, parity-free streams are exactly the ones whose FTL
        behaviour never depends on page *content* -- the precondition for
        the analytic (no byte materialization) chip fast path.
        """
        return self._codec is None

    def encode(self, payload: bytes) -> bytes:
        """Encode ``payload`` (<= :attr:`payload_bytes`) into page bytes."""
        if len(payload) > self.payload_bytes:
            raise ValueError(
                f"payload {len(payload)}B exceeds capacity {self.payload_bytes}B"
            )
        payload = payload.ljust(self.payload_bytes, b"\x00")
        if self._codec is None:
            return payload.ljust(self.page_size_bytes, b"\x00")
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
        k = self._codec.k
        out_bits = []
        for i in range(self._codewords):
            chunk = np.zeros(k, dtype=np.uint8)
            segment = bits[i * k: (i + 1) * k]
            chunk[: segment.size] = segment
            out_bits.append(self._encode_word(chunk))
        page_bits = np.concatenate(out_bits)
        pad = self.page_size_bytes * 8 - page_bits.size
        if pad:
            page_bits = np.concatenate([page_bits, np.zeros(pad, dtype=np.uint8)])
        return np.packbits(page_bits).tobytes()

    def decode(self, page: bytes) -> PageReadResult:
        """Decode page bytes back into a payload, tolerating failures."""
        if len(page) != self.page_size_bytes:
            raise ValueError(f"expected {self.page_size_bytes}B page, got {len(page)}B")
        if self._codec is None:
            return PageReadResult(payload=page, corrected_bits=0, uncorrectable_codewords=0)
        bits = np.unpackbits(np.frombuffer(page, dtype=np.uint8))
        n, k = self._codec.n, self._codec.k
        data_bits = []
        corrected = 0
        uncorrectable = 0
        for i in range(self._codewords):
            word = bits[i * n: (i + 1) * n]
            word_data, word_corrected, failed = self._decode_word(word)
            data_bits.append(word_data)
            corrected += word_corrected
            uncorrectable += int(failed)
        all_bits = np.concatenate(data_bits)[: self.payload_bytes * 8]
        payload = np.packbits(all_bits).tobytes()
        return PageReadResult(
            payload=payload, corrected_bits=corrected, uncorrectable_codewords=uncorrectable
        )

    # -- codec dispatch ------------------------------------------------------

    def _encode_word(self, data_bits: np.ndarray) -> np.ndarray:
        assert self._codec is not None
        return self._codec.encode(data_bits)

    def _decode_word(self, word: np.ndarray) -> tuple[np.ndarray, int, bool]:
        assert self._codec is not None
        if isinstance(self._codec, HammingSecDed):
            result = self._codec.decode(word)
            return result.data_bits, int(result.corrected), result.detected_uncorrectable
        assert isinstance(self._codec, BCHCode)
        try:
            result = self._codec.decode(word)
            return result.data_bits, result.corrected_errors, False
        except DecodeFailure:
            # best effort: pass raw data bits through (systematic layout)
            return word[self._codec.n_parity:].copy(), 0, True

    @property
    def level(self) -> ProtectionLevel:
        """Protection level of the underlying policy."""
        return self.policy.level
