"""Error-correcting-code substrate.

Bit-exact BCH and extended-Hamming codecs, a closed-form failure model for
lifetime simulations, and named protection policies (NONE / WEAK / STRONG)
that implement §4.2's protection spectrum for SYS and SPARE partitions.
"""

from .bch import BCHCode, DecodeFailure, DecodeResult
from .gf import GF2m
from .hamming import HammingResult, HammingSecDed
from .model import CodewordSpec, codeword_failure_prob, page_failure_prob, residual_ber
from .page_codec import PageCodec, PageReadResult
from .policy import POLICIES, ProtectionLevel, ProtectionPolicy

__all__ = [
    "BCHCode",
    "DecodeFailure",
    "DecodeResult",
    "GF2m",
    "HammingResult",
    "HammingSecDed",
    "CodewordSpec",
    "codeword_failure_prob",
    "page_failure_prob",
    "residual_ber",
    "PageCodec",
    "PageReadResult",
    "POLICIES",
    "ProtectionLevel",
    "ProtectionPolicy",
]
