"""Closed-form ECC failure model.

Lifetime simulations cannot run a bit-exact BCH decode for every page of a
multi-year trace, so they use the standard analytic form: for a codeword
of ``n`` bits protected against ``t`` errors, with independent bit errors
at rate ``rber``, the codeword fails when more than ``t`` bits flip:

    P(fail) = P[Binomial(n, rber) > t] = 1 - BinomCDF(t; n, rber)

Page-level failure composes codeword failures across the interleaved
codewords covering the page.  The model also exposes the expected count of
*residual* bit errors delivered to the application when a codeword fails
(or when no ECC is used), which drives media-quality degradation in the
approximate-storage experiments.

Cross-validated against the bit-exact :class:`repro.ecc.bch.BCHCode` in
``tests/ecc/test_model_vs_bch.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = [
    "CodewordSpec",
    "codeword_failure_prob",
    "page_failure_prob",
    "residual_ber",
    "page_failure_prob_many",
    "residual_ber_many",
]


@dataclass(frozen=True, slots=True)
class CodewordSpec:
    """Shape of one ECC codeword: ``n`` total bits protecting ``k`` data bits
    against up to ``t`` bit errors (``t = 0`` models no ECC)."""

    n: int
    k: int
    t: int

    def __post_init__(self) -> None:
        if self.n < 1 or not 0 < self.k <= self.n or self.t < 0:
            raise ValueError(f"invalid codeword spec {self}")

    @property
    def overhead(self) -> float:
        """Parity overhead as a fraction of data bits."""
        return (self.n - self.k) / self.k


def codeword_failure_prob(spec: CodewordSpec, rber: float) -> float:
    """Probability one codeword exceeds its correction budget at ``rber``."""
    if not 0.0 <= rber <= 1.0:
        raise ValueError("rber must be in [0, 1]")
    if rber == 0.0:
        return 0.0
    return float(stats.binom.sf(spec.t, spec.n, rber))


def page_failure_prob(spec: CodewordSpec, rber: float, codewords_per_page: int) -> float:
    """Probability at least one of a page's codewords fails at ``rber``."""
    if codewords_per_page < 1:
        raise ValueError("codewords_per_page must be >= 1")
    p_cw = codeword_failure_prob(spec, rber)
    # log-space to stay accurate for tiny probabilities
    if p_cw >= 1.0:
        return 1.0
    return float(-math.expm1(codewords_per_page * math.log1p(-p_cw)))


def residual_ber(spec: CodewordSpec, rber: float) -> float:
    """Expected bit error rate delivered to the application after ECC.

    When the codeword decodes (<= t errors) all are corrected and the
    residual is zero for those words.  When it fails (> t errors), the
    decoder typically returns the raw word (or a miscorrection of similar
    weight), so the residual error count approximates the raw count.

        residual = E[errors | fail] * P(fail) / n

    For ``t = 0`` (no ECC) this reduces to exactly ``rber``.
    """
    if spec.t == 0:
        return rber
    p_fail = codeword_failure_prob(spec, rber)
    if p_fail == 0.0:
        return 0.0
    mean_errors = spec.n * rber
    # E[X | X > t] for X ~ Binomial(n, p), computed from the tail sums.
    # E[X] = E[X | X<=t] P(X<=t) + E[X | X>t] P(X>t)
    below = 0.0
    for j in range(spec.t + 1):
        below += j * float(stats.binom.pmf(j, spec.n, rber))
    mean_given_fail = (mean_errors - below) / p_fail
    # floating-point cancellation can leave a tiny negative residue
    return max(0.0, mean_given_fail * p_fail / spec.n)


def page_failure_prob_many(
    spec: CodewordSpec, rber: np.ndarray, codewords_per_page: int
) -> np.ndarray:
    """Vectorized :func:`page_failure_prob` over an array of RBER values."""
    if codewords_per_page < 1:
        raise ValueError("codewords_per_page must be >= 1")
    rber = np.asarray(rber, dtype=float)
    if np.any((rber < 0.0) | (rber > 1.0)):
        raise ValueError("rber must be in [0, 1]")
    p_cw = np.where(rber > 0.0, stats.binom.sf(spec.t, spec.n, rber), 0.0)
    saturated = p_cw >= 1.0
    # log-space to stay accurate for tiny probabilities
    safe = np.where(saturated, 0.0, p_cw)
    out = -np.expm1(codewords_per_page * np.log1p(-safe))
    return np.where(saturated, 1.0, out)


def residual_ber_many(spec: CodewordSpec, rber: np.ndarray) -> np.ndarray:
    """Vectorized :func:`residual_ber` over an array of RBER values.

    Accepts any input shape (the batched fleet engine passes
    ``(n_devices, n_groups)``); the result matches the input shape.
    """
    rber = np.asarray(rber, dtype=float)
    if spec.t == 0:
        return rber.astype(float, copy=True)
    flat = rber.ravel()
    p_fail = np.where(flat > 0.0, stats.binom.sf(spec.t, spec.n, flat), 0.0)
    mean_errors = spec.n * flat
    j = np.arange(spec.t + 1, dtype=float)
    below = (j[:, None] * stats.binom.pmf(j[:, None], spec.n, flat[None, :])).sum(axis=0)
    # mean_given_fail * p_fail == mean_errors - below; guard the p_fail == 0
    # branch of the scalar form and clamp the cancellation residue
    out = np.where(p_fail > 0.0, np.maximum(0.0, mean_errors - below) / spec.n, 0.0)
    return out.reshape(rber.shape)
