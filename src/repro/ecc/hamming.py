"""Hamming SEC-DED code (single error correct, double error detect).

The "weak protection" end of the paper's spectrum (§4.2): SPARE data may
be stored with no ECC or with a lightweight code.  Hamming(2^r - 1 + 1
extended) corrects one bit per codeword at a fraction of BCH's parity
overhead, making it the natural weak-ECC operating point for approximate
storage experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HammingSecDed", "HammingResult"]


@dataclass(frozen=True, slots=True)
class HammingResult:
    """Decode outcome for one extended-Hamming codeword."""

    data_bits: np.ndarray
    corrected: bool
    detected_uncorrectable: bool


class HammingSecDed:
    """Extended Hamming code with ``r`` parity bits plus overall parity.

    Codeword length ``n = 2^r`` bits (including the overall parity bit at
    position 0); data length ``k = 2^r - r - 1``.
    """

    def __init__(self, r: int) -> None:
        if r < 2:
            raise ValueError("r must be >= 2")
        self.r = r
        self.n = (1 << r)  # includes overall parity at position 0
        self.k = (1 << r) - r - 1

    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        """Encode ``k`` data bits into an ``n``-bit extended codeword."""
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        if data_bits.size != self.k:
            raise ValueError(f"expected {self.k} data bits, got {data_bits.size}")
        cw = np.zeros(self.n, dtype=np.uint8)
        # place data bits at non-power-of-two positions >= 3
        di = 0
        for pos in range(1, self.n):
            if pos & (pos - 1):  # not a power of two
                cw[pos] = data_bits[di]
                di += 1
        # parity bits at power-of-two positions
        for p in range(self.r):
            mask = 1 << p
            parity = 0
            for pos in range(1, self.n):
                if pos & mask and pos != mask:
                    parity ^= int(cw[pos])
            cw[mask] = parity
        cw[0] = int(np.bitwise_xor.reduce(cw[1:]))
        return cw

    def decode(self, received: np.ndarray) -> HammingResult:
        """Decode, correcting single errors and detecting double errors."""
        received = np.asarray(received, dtype=np.uint8)
        if received.size != self.n:
            raise ValueError(f"expected {self.n} bits, got {received.size}")
        syndrome = 0
        for p in range(self.r):
            mask = 1 << p
            parity = 0
            for pos in range(1, self.n):
                if pos & mask:
                    parity ^= int(received[pos])
            if parity:
                syndrome |= mask
        overall = int(np.bitwise_xor.reduce(received))
        cw = received.copy()
        corrected = False
        detected = False
        if syndrome and overall:
            cw[syndrome] ^= 1  # single error at `syndrome`
            corrected = True
        elif syndrome and not overall:
            detected = True  # double error: detectable, uncorrectable
        elif not syndrome and overall:
            cw[0] ^= 1  # error in the overall parity bit itself
            corrected = True
        data = np.array(
            [cw[pos] for pos in range(1, self.n) if pos & (pos - 1)], dtype=np.uint8
        )
        return HammingResult(data_bits=data, corrected=corrected, detected_uncorrectable=detected)
