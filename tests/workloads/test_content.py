"""Synthetic content profiles and reduction baselines."""

from __future__ import annotations

import pytest

from repro.host.files import FileKind, MEDIA_KINDS
from repro.host.reduction import analyze, compress_savings, dedup_savings
from repro.workloads.content import COMPRESSIBILITY_CLASS, generate_content


@pytest.fixture
def gen_rng(make_rng):
    return make_rng(77)


class TestContentProfiles:
    def test_all_kinds_covered(self):
        assert set(COMPRESSIBILITY_CLASS) == set(FileKind)

    def test_requested_size_honoured(self, gen_rng):
        for kind in FileKind:
            data = generate_content(kind, 10_000, gen_rng)
            assert len(data) == 10_000

    def test_zero_size(self, gen_rng):
        assert generate_content(FileKind.PHOTO, 0, gen_rng) == b""

    def test_media_near_incompressible(self, gen_rng):
        for kind in MEDIA_KINDS:
            data = generate_content(kind, 50_000, gen_rng)
            assert compress_savings(data) < 0.10, kind

    def test_structured_highly_compressible(self, gen_rng):
        data = generate_content(FileKind.APP_METADATA, 50_000, gen_rng)
        assert compress_savings(data) > 0.5

    def test_binary_moderately_compressible(self, gen_rng):
        data = generate_content(FileKind.APP_EXECUTABLE, 50_000, gen_rng)
        assert 0.1 < compress_savings(data) < 0.7


class TestReduction:
    def test_empty_inputs(self):
        assert compress_savings(b"") == 0.0
        assert dedup_savings([]) == 0.0

    def test_dedup_finds_exact_duplicates(self, gen_rng):
        data = generate_content(FileKind.VIDEO, 40_960, gen_rng)
        savings = dedup_savings([data, data])
        assert savings == pytest.approx(0.5, abs=0.01)

    def test_dedup_zero_on_unique_data(self, gen_rng):
        a = generate_content(FileKind.VIDEO, 40_960, gen_rng)
        b = generate_content(FileKind.VIDEO, 40_960, gen_rng)
        assert dedup_savings([a, b]) == pytest.approx(0.0, abs=0.01)

    def test_analyze_consistent_with_parts(self, gen_rng):
        buffers = [
            generate_content(FileKind.APP_METADATA, 20_480, gen_rng),
            generate_content(FileKind.VIDEO, 20_480, gen_rng),
        ]
        reduction = analyze(buffers)
        assert reduction.total_bytes == 40_960
        assert 0.0 <= reduction.compression_savings <= 1.0
        assert 0.0 <= reduction.dedup_savings <= 1.0

    def test_report_savings_never_negative(self, gen_rng):
        data = generate_content(FileKind.VIDEO, 8192, gen_rng)
        reduction = analyze([data])
        assert reduction.compression_savings >= 0.0
        assert reduction.dedup_savings == pytest.approx(0.0, abs=1e-9)
