"""Workload profiles, generator calibration, trace round-trips."""

from __future__ import annotations

import pytest

from repro.workloads.apps import APP_PROFILES, USER_MIXES, daily_write_gb
from repro.workloads.mobile import MobileWorkload, WorkloadConfig
from repro.workloads.traces import DailySummary, OpKind, TraceOp, load_trace, save_trace
from repro.host.files import FileKind


class TestProfiles:
    def test_all_mix_apps_exist(self):
        for mix in USER_MIXES.values():
            for app in mix:
                assert app in APP_PROFILES

    def test_produces_weights_positive(self):
        for profile in APP_PROFILES.values():
            assert all(w > 0 for w in profile.produces.values())

    def test_typical_writes_a_few_gb_per_day(self):
        """Calibration to Zhang et al.: typical mobile use is ~2-3 GB/day."""
        assert 1.5 <= daily_write_gb("typical") <= 3.5

    def test_mix_ordering(self):
        assert daily_write_gb("light") < daily_write_gb("typical") < daily_write_gb("heavy")

    def test_adversarial_dominated_by_stress_game(self):
        assert daily_write_gb("adversarial") > 10 * daily_write_gb("typical")


class TestGenerator:
    def test_summary_count_matches_days(self):
        wl = MobileWorkload(WorkloadConfig(days=100, seed=1))
        assert len(wl.daily_summaries()) == 100

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            MobileWorkload(WorkloadConfig(mix="bogus"))

    def test_volumes_positive_and_media_heavy(self):
        wl = MobileWorkload(WorkloadConfig(mix="typical", days=200, seed=2))
        summaries = wl.daily_summaries()
        total_media = sum(s.new_media_gb for s in summaries)
        total_other = sum(s.new_other_gb for s in summaries)
        assert total_media > total_other  # media dominates new bytes
        assert all(s.total_write_gb > 0 for s in summaries)

    def test_deterministic_under_seed(self):
        a = MobileWorkload(WorkloadConfig(days=50, seed=3)).daily_summaries()
        b = MobileWorkload(WorkloadConfig(days=50, seed=3)).daily_summaries()
        assert a == b

    def test_mean_volume_tracks_mix_nominal(self):
        wl = MobileWorkload(WorkloadConfig(mix="typical", days=730, seed=4))
        summaries = wl.daily_summaries()
        mean = sum(s.total_write_gb for s in summaries) / len(summaries)
        nominal = daily_write_gb("typical")
        # log-normal jitter biases the mean up slightly (e^{sigma^2/2})
        assert nominal * 0.8 <= mean <= nominal * 1.5


class TestVolumeArrays:
    """The batched generator path must not perturb a single bit."""

    @pytest.mark.parametrize("mix", ["light", "typical", "heavy", "adversarial"])
    def test_bit_identical_to_daily_summaries(self, mix):
        config = WorkloadConfig(mix=mix, days=200, seed=42)
        summaries = MobileWorkload(config).daily_summaries()
        arrays = MobileWorkload(config).daily_volume_arrays()
        assert list(arrays["day"]) == [s.day for s in summaries]
        for field in ("new_media_gb", "new_other_gb", "overwrite_gb",
                      "read_gb", "delete_gb"):
            batched = arrays[field]
            scalar = [getattr(s, field) for s in summaries]
            assert list(batched) == scalar, field

    def test_consumes_same_rng_stream(self):
        """Drawing arrays leaves the generator's rng exactly where the
        scalar path would, so mixed callers stay reproducible."""
        a = MobileWorkload(WorkloadConfig(days=50, seed=9))
        b = MobileWorkload(WorkloadConfig(days=50, seed=9))
        a.daily_summaries()
        b.daily_volume_arrays()
        assert a._rng.bit_generator.state == b._rng.bit_generator.state


class TestOps:
    def test_ops_cover_all_kinds_of_operations(self):
        wl = MobileWorkload(WorkloadConfig(days=300, seed=5))
        ops = wl.ops(scale_bytes=1e-6)
        kinds = {op.kind for op in ops}
        assert OpKind.CREATE in kinds
        assert OpKind.OVERWRITE in kinds
        assert OpKind.READ in kinds
        assert OpKind.DELETE in kinds

    def test_deletes_reference_created_paths(self):
        wl = MobileWorkload(WorkloadConfig(days=300, seed=5))
        ops = wl.ops(scale_bytes=1e-6)
        created = {op.path for op in ops if op.kind is OpKind.CREATE}
        for op in ops:
            if op.kind is OpKind.DELETE:
                assert op.path in created


class TestTraceSerialization:
    def test_roundtrip(self, tmp_path):
        ops = [
            TraceOp(day=0, kind=OpKind.CREATE, path="/a", file_kind=FileKind.PHOTO,
                    size_bytes=100, cloud_backed=True),
            TraceOp(day=1, kind=OpKind.DELETE, path="/a", file_kind=FileKind.PHOTO,
                    size_bytes=100),
        ]
        path = tmp_path / "trace.json"
        save_trace(ops, path)
        assert load_trace(path) == ops

    def test_daily_summary_total(self):
        s = DailySummary(day=0, new_media_gb=1.0, new_other_gb=0.5,
                         overwrite_gb=0.25, read_gb=2.0, delete_gb=0.5)
        assert s.total_write_gb == pytest.approx(1.75)
