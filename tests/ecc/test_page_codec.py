"""Page-level encode/decode through each protection policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecc.page_codec import PageCodec
from repro.ecc.policy import POLICIES, ProtectionLevel

PAGE = 512


@pytest.fixture(params=list(ProtectionLevel))
def codec(request) -> PageCodec:
    return PageCodec(POLICIES[request.param], PAGE)


class TestRoundtrip:
    def test_clean_roundtrip(self, codec, rng):
        payload = rng.bytes(codec.payload_bytes)
        page = codec.encode(payload)
        assert len(page) == PAGE
        result = codec.decode(page)
        assert result.payload == payload
        assert result.clean

    def test_short_payload_padded(self, codec):
        result = codec.decode(codec.encode(b"abc"))
        assert result.payload[:3] == b"abc"
        assert result.payload[3:] == b"\x00" * (codec.payload_bytes - 3)

    def test_oversized_payload_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.encode(b"x" * (codec.payload_bytes + 1))

    def test_wrong_page_size_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.decode(b"x" * (PAGE - 1))


class TestCapacities:
    def test_none_policy_has_full_capacity(self):
        codec = PageCodec(POLICIES[ProtectionLevel.NONE], PAGE)
        assert codec.payload_bytes == PAGE

    def test_protected_policies_pay_overhead(self):
        for level in (ProtectionLevel.WEAK, ProtectionLevel.STRONG):
            codec = PageCodec(POLICIES[level], PAGE)
            assert codec.payload_bytes < PAGE

    def test_page_too_small_for_codeword_rejected(self):
        with pytest.raises(ValueError):
            PageCodec(POLICIES[ProtectionLevel.STRONG], page_size_bytes=64)


class TestErrorHandling:
    def _flip_bits(self, page: bytes, positions: list[int]) -> bytes:
        arr = bytearray(page)
        for pos in positions:
            arr[pos >> 3] ^= 1 << (7 - (pos & 7))  # matches np.unpackbits order
        return bytes(arr)

    def test_strong_corrects_scattered_errors(self, rng):
        codec = PageCodec(POLICIES[ProtectionLevel.STRONG], PAGE)
        payload = rng.bytes(codec.payload_bytes)
        page = codec.encode(payload)
        # a few flips per codeword region
        noisy = self._flip_bits(page, [10, 500, 1100, 2000, 3000])
        result = codec.decode(noisy)
        assert result.payload == payload
        assert result.corrected_bits >= 5 - 1  # flips may land in padding
        assert result.clean

    def test_weak_corrects_one_per_codeword_only(self, rng):
        codec = PageCodec(POLICIES[ProtectionLevel.WEAK], PAGE)
        payload = rng.bytes(codec.payload_bytes)
        page = codec.encode(payload)
        # two flips inside the FIRST 64-bit codeword
        noisy = self._flip_bits(page, [3, 17])
        result = codec.decode(noisy)
        assert result.uncorrectable_codewords == 1
        assert not result.clean

    def test_none_passes_errors_through(self, rng):
        codec = PageCodec(POLICIES[ProtectionLevel.NONE], PAGE)
        payload = rng.bytes(codec.payload_bytes)
        page = codec.encode(payload)
        noisy = self._flip_bits(page, [0])
        result = codec.decode(noisy)
        assert result.payload != payload
        assert result.clean  # no ECC = nothing to fail

    def test_strong_beyond_capability_passes_best_effort(self, rng):
        codec = PageCodec(POLICIES[ProtectionLevel.STRONG], PAGE)
        payload = rng.bytes(codec.payload_bytes)
        page = codec.encode(payload)
        # 30 flips inside the first 1023-bit codeword: beyond t=8
        noisy = self._flip_bits(page, list(range(50, 1000, 32)))
        result = codec.decode(noisy)
        assert result.uncorrectable_codewords >= 1
        assert len(result.payload) == codec.payload_bytes
