"""Protection policy semantics and spec/codec consistency."""

from __future__ import annotations

import pytest

from repro.ecc.bch import BCHCode
from repro.ecc.hamming import HammingSecDed
from repro.ecc.policy import POLICIES, ProtectionLevel


class TestPolicyTable:
    def test_all_levels_present(self):
        assert set(POLICIES) == set(ProtectionLevel)

    def test_weak_spec_matches_its_codec(self):
        policy = POLICIES[ProtectionLevel.WEAK]
        codec = policy.make_codec()
        assert isinstance(codec, HammingSecDed)
        assert (codec.n, codec.k) == (policy.spec.n, policy.spec.k)

    def test_strong_spec_matches_its_codec(self):
        policy = POLICIES[ProtectionLevel.STRONG]
        codec = policy.make_codec()
        assert isinstance(codec, BCHCode)
        assert (codec.n, codec.k, codec.t) == (
            policy.spec.n,
            policy.spec.k,
            policy.spec.t,
        )

    def test_none_has_no_codec(self):
        assert POLICIES[ProtectionLevel.NONE].make_codec() is None

    def test_only_strong_has_block_parity(self):
        assert POLICIES[ProtectionLevel.STRONG].block_parity
        assert not POLICIES[ProtectionLevel.WEAK].block_parity
        assert not POLICIES[ProtectionLevel.NONE].block_parity


class TestPolicyMath:
    def test_none_never_reports_page_failure(self):
        policy = POLICIES[ProtectionLevel.NONE]
        assert policy.page_failure_prob(0.01, page_bits=4096) == 0.0

    def test_failure_ordering_weak_vs_strong(self):
        """At moderate RBER the strong code must fail (much) less."""
        rber = 2e-3
        weak = POLICIES[ProtectionLevel.WEAK].page_failure_prob(rber, 4096)
        strong = POLICIES[ProtectionLevel.STRONG].page_failure_prob(rber, 4096)
        assert strong < weak

    def test_residual_ordering(self):
        rber = 1e-3
        residuals = {
            level: POLICIES[level].residual_ber(rber) for level in ProtectionLevel
        }
        assert residuals[ProtectionLevel.STRONG] < residuals[ProtectionLevel.WEAK]
        assert residuals[ProtectionLevel.WEAK] < residuals[ProtectionLevel.NONE]
        assert residuals[ProtectionLevel.NONE] == rber

    def test_capacity_overhead_ordering(self):
        assert POLICIES[ProtectionLevel.NONE].capacity_overhead == 0.0
        assert POLICIES[ProtectionLevel.STRONG].capacity_overhead > 0.0
