"""Analytic ECC failure model: shapes, edge cases, known values."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.model import (
    CodewordSpec,
    codeword_failure_prob,
    page_failure_prob,
    residual_ber,
)

SPEC = CodewordSpec(n=1023, k=943, t=8)


class TestCodewordSpec:
    def test_overhead(self):
        assert SPEC.overhead == pytest.approx(80 / 943)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            CodewordSpec(n=10, k=11, t=1)
        with pytest.raises(ValueError):
            CodewordSpec(n=10, k=0, t=1)
        with pytest.raises(ValueError):
            CodewordSpec(n=10, k=5, t=-1)


class TestCodewordFailure:
    def test_zero_rber_never_fails(self):
        assert codeword_failure_prob(SPEC, 0.0) == 0.0

    def test_certain_errors_always_fail(self):
        assert codeword_failure_prob(SPEC, 1.0) == pytest.approx(1.0)

    def test_monotone_in_rber(self):
        probs = [codeword_failure_prob(SPEC, r) for r in (1e-5, 1e-4, 1e-3, 1e-2)]
        assert probs == sorted(probs)

    def test_stronger_code_fails_less(self):
        weak = CodewordSpec(n=1023, k=1003, t=2)
        assert codeword_failure_prob(SPEC, 1e-3) < codeword_failure_prob(weak, 1e-3)

    def test_invalid_rber_rejected(self):
        with pytest.raises(ValueError):
            codeword_failure_prob(SPEC, -0.1)
        with pytest.raises(ValueError):
            codeword_failure_prob(SPEC, 1.1)

    def test_known_value_binomial_tail(self):
        """t=0 reduces to 1 - (1-p)^n exactly."""
        spec = CodewordSpec(n=100, k=100, t=0)
        p = 1e-3
        expected = 1.0 - (1.0 - p) ** 100
        assert codeword_failure_prob(spec, p) == pytest.approx(expected, rel=1e-9)


class TestPageFailure:
    def test_more_codewords_fail_more(self):
        p1 = page_failure_prob(SPEC, 1e-3, codewords_per_page=1)
        p4 = page_failure_prob(SPEC, 1e-3, codewords_per_page=4)
        assert p4 > p1
        # union bound
        assert p4 <= 4 * p1 + 1e-12

    def test_single_codeword_matches_codeword_prob(self):
        assert page_failure_prob(SPEC, 1e-3, 1) == pytest.approx(
            codeword_failure_prob(SPEC, 1e-3), rel=1e-9
        )

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            page_failure_prob(SPEC, 1e-3, 0)

    def test_accurate_for_tiny_probabilities(self):
        """log1p path must not underflow to zero for small p."""
        p = page_failure_prob(SPEC, 1e-4, 4)
        assert 0 < p < 1e-6


class TestResidualBer:
    def test_no_ecc_passes_rber_through(self):
        spec = CodewordSpec(n=1024, k=1024, t=0)
        assert residual_ber(spec, 3e-4) == 3e-4

    def test_strong_ecc_suppresses_low_rber(self):
        assert residual_ber(SPEC, 1e-4) < 1e-8

    def test_residual_never_exceeds_raw(self):
        for rber in (1e-5, 1e-4, 1e-3, 1e-2, 0.1):
            assert residual_ber(SPEC, rber) <= rber + 1e-15

    def test_residual_approaches_raw_at_high_rber(self):
        """When every codeword fails, errors pass through ~unfiltered."""
        assert residual_ber(SPEC, 0.1) == pytest.approx(0.1, rel=0.05)

    @given(rber=st.floats(min_value=1e-6, max_value=0.3))
    @settings(max_examples=80, deadline=None)
    def test_residual_is_valid_probability(self, rber):
        r = residual_ber(SPEC, rber)
        assert 0.0 <= r <= 0.5
        assert math.isfinite(r)
