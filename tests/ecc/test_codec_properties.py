"""Property-based page-codec tests: correction guarantees under random
error patterns bounded by each code's design strength."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.page_codec import PageCodec
from repro.ecc.policy import POLICIES, ProtectionLevel

PAGE = 512

STRONG = PageCodec(POLICIES[ProtectionLevel.STRONG], PAGE)
WEAK = PageCodec(POLICIES[ProtectionLevel.WEAK], PAGE)
NONE = PageCodec(POLICIES[ProtectionLevel.NONE], PAGE)


def _flip(page: bytes, bit_positions: list[int]) -> bytes:
    bits = np.unpackbits(np.frombuffer(page, dtype=np.uint8))
    for pos in bit_positions:
        bits[pos] ^= 1
    return np.packbits(bits).tobytes()


@given(
    seed=st.integers(0, 2**32 - 1),
    errors_per_codeword=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_strong_corrects_any_within_t_pattern(seed, errors_per_codeword):
    """<= t errors per 1023-bit codeword always decode bit-exact."""
    rng = np.random.default_rng(seed)
    payload = rng.bytes(STRONG.payload_bytes)
    page = STRONG.encode(payload)
    n = 1023
    positions = []
    codewords = (PAGE * 8) // n
    for cw in range(codewords):
        offsets = rng.choice(n, size=errors_per_codeword, replace=False)
        positions.extend(int(cw * n + off) for off in offsets)
    result = STRONG.decode(_flip(page, positions))
    assert result.payload == payload
    assert result.clean


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_weak_corrects_one_per_codeword(seed):
    rng = np.random.default_rng(seed)
    payload = rng.bytes(WEAK.payload_bytes)
    page = WEAK.encode(payload)
    n = 64
    positions = [int(cw * n + rng.integers(0, n)) for cw in range((PAGE * 8) // n)]
    result = WEAK.decode(_flip(page, positions))
    assert result.payload == payload


@given(seed=st.integers(0, 2**32 - 1), nflips=st.integers(1, 64))
@settings(max_examples=25, deadline=None)
def test_none_payload_errors_equal_page_errors(seed, nflips):
    """No ECC: flipped bits appear verbatim in the payload."""
    rng = np.random.default_rng(seed)
    payload = rng.bytes(NONE.payload_bytes)
    page = NONE.encode(payload)
    positions = sorted(
        int(p) for p in rng.choice(PAGE * 8, size=nflips, replace=False)
    )
    result = NONE.decode(_flip(page, positions))
    delivered_flips = sum(
        (a ^ b).bit_count() for a, b in zip(result.payload, payload)
    )
    assert delivered_flips == len(set(positions))


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_roundtrip_identity_for_all_policies(seed):
    rng = np.random.default_rng(seed)
    for codec in (STRONG, WEAK, NONE):
        payload = rng.bytes(codec.payload_bytes)
        assert codec.decode(codec.encode(payload)).payload == payload
