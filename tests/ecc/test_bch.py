"""BCH codec: roundtrips, correction capability, failure detection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.bch import BCHCode, DecodeFailure

CODE = BCHCode(m=6, t=3)  # n=63, k=45


def random_data(rng, code=CODE):
    return rng.integers(0, 2, size=code.k).astype(np.uint8)


class TestConstruction:
    def test_parameters(self):
        assert CODE.n == 63
        assert CODE.k == 45
        assert CODE.n_parity == 18

    def test_generator_divides_xn_minus_1(self):
        """The generator of a cyclic code must divide x^n + 1 over GF(2)."""
        gen = CODE.generator
        # synthetic division of x^63 + 1 by gen, over GF(2)
        dividend = [0] * 64
        dividend[0] = 1
        dividend[63] = 1
        rem = dividend[:]
        for i in range(63, len(gen) - 2, -1):
            if rem[i]:
                shift = i - (len(gen) - 1)
                for j, g in enumerate(gen):
                    rem[shift + j] ^= g
        assert not any(rem)

    def test_maximal_t_leaves_single_data_bit(self):
        """BCH(15) with all conjugacy classes in the generator: k = 1."""
        code = BCHCode(m=4, t=4)
        assert code.k >= 1
        assert code.k < 5  # nearly all bits are parity

    def test_t_must_be_positive(self):
        with pytest.raises(ValueError):
            BCHCode(m=6, t=0)


class TestRoundtrip:
    def test_clean_roundtrip(self, rng):
        data = random_data(rng)
        result = CODE.decode(CODE.encode(data))
        assert np.array_equal(result.data_bits, data)
        assert result.corrected_errors == 0

    def test_systematic_layout(self, rng):
        data = random_data(rng)
        cw = CODE.encode(data)
        assert np.array_equal(cw[CODE.n_parity:], data)

    def test_wrong_data_length_rejected(self):
        with pytest.raises(ValueError):
            CODE.encode(np.zeros(CODE.k + 1, dtype=np.uint8))
        with pytest.raises(ValueError):
            CODE.decode(np.zeros(CODE.n + 1, dtype=np.uint8))

    @given(nerrors=st.integers(min_value=1, max_value=3), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_corrects_up_to_t_errors(self, nerrors, seed):
        rng = np.random.default_rng(seed)
        data = random_data(rng)
        cw = CODE.encode(data)
        positions = rng.choice(CODE.n, size=nerrors, replace=False)
        rx = cw.copy()
        for p in positions:
            rx[p] ^= 1
        result = CODE.decode(rx)
        assert np.array_equal(result.data_bits, data)
        assert result.corrected_errors == nerrors

    def test_all_zero_and_all_one_data(self):
        for data in (np.zeros(CODE.k, np.uint8), np.ones(CODE.k, np.uint8)):
            cw = CODE.encode(data)
            cw[5] ^= 1
            cw[40] ^= 1
            result = CODE.decode(cw)
            assert np.array_equal(result.data_bits, data)


class TestBeyondCapability:
    def test_many_errors_never_silently_return_valid_flag(self, rng):
        """With >> t errors the decoder must raise or miscorrect to a
        *different* codeword -- never return the original data."""
        failures = 0
        miscorrections = 0
        for trial in range(30):
            data = random_data(rng)
            cw = CODE.encode(data)
            rx = cw.copy()
            for p in rng.choice(CODE.n, size=9, replace=False):
                rx[p] ^= 1
            try:
                result = CODE.decode(rx)
                if not np.array_equal(result.data_bits, data):
                    miscorrections += 1
            except DecodeFailure:
                failures += 1
        assert failures + miscorrections >= 28  # recovery is vanishingly rare

    def test_stronger_code_corrects_more(self, rng):
        strong = BCHCode(m=8, t=8)
        data = rng.integers(0, 2, size=strong.k).astype(np.uint8)
        cw = strong.encode(data)
        rx = cw.copy()
        for p in rng.choice(strong.n, size=8, replace=False):
            rx[p] ^= 1
        assert np.array_equal(strong.decode(rx).data_bits, data)
