"""Field axioms and polynomial machinery for GF(2^m)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.gf import GF2m

FIELD = GF2m(8)
elements = st.integers(min_value=0, max_value=FIELD.size - 1)
nonzero = st.integers(min_value=1, max_value=FIELD.size - 1)


class TestConstruction:
    def test_supported_sizes(self):
        for m in range(3, 11):
            field = GF2m(m)
            assert field.size == 1 << m

    def test_unsupported_size_rejected(self):
        with pytest.raises(ValueError):
            GF2m(2)
        with pytest.raises(ValueError):
            GF2m(11)

    def test_exp_log_are_inverse(self):
        for x in range(1, FIELD.size):
            assert FIELD.alpha_pow(FIELD.log(x)) == x


class TestAxioms:
    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=200, deadline=None)
    def test_multiplication_associative(self, a, b, c):
        assert FIELD.mul(FIELD.mul(a, b), c) == FIELD.mul(a, FIELD.mul(b, c))

    @given(a=elements, b=elements)
    @settings(max_examples=200, deadline=None)
    def test_multiplication_commutative(self, a, b):
        assert FIELD.mul(a, b) == FIELD.mul(b, a)

    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=200, deadline=None)
    def test_distributivity(self, a, b, c):
        left = FIELD.mul(a, FIELD.add(b, c))
        right = FIELD.add(FIELD.mul(a, b), FIELD.mul(a, c))
        assert left == right

    @given(a=nonzero)
    @settings(max_examples=100, deadline=None)
    def test_inverse(self, a):
        assert FIELD.mul(a, FIELD.inv(a)) == 1

    @given(a=elements)
    @settings(max_examples=50, deadline=None)
    def test_additive_self_inverse(self, a):
        assert FIELD.add(a, a) == 0

    @given(a=nonzero, b=nonzero)
    @settings(max_examples=100, deadline=None)
    def test_division_inverts_multiplication(self, a, b):
        assert FIELD.div(FIELD.mul(a, b), b) == a

    def test_zero_division_raises(self):
        with pytest.raises(ZeroDivisionError):
            FIELD.div(1, 0)
        with pytest.raises(ZeroDivisionError):
            FIELD.inv(0)


class TestPow:
    @given(a=nonzero, n=st.integers(min_value=-10, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_pow_matches_repeated_multiplication(self, a, n):
        if n >= 0:
            expected = 1
            for _ in range(n):
                expected = FIELD.mul(expected, a)
        else:
            inv = FIELD.inv(a)
            expected = 1
            for _ in range(-n):
                expected = FIELD.mul(expected, inv)
        assert FIELD.pow(a, n) == expected

    def test_zero_pow(self):
        assert FIELD.pow(0, 0) == 1
        assert FIELD.pow(0, 3) == 0
        with pytest.raises(ZeroDivisionError):
            FIELD.pow(0, -1)


class TestMinimalPolynomial:
    def test_minimal_poly_annihilates_element(self):
        for i in (1, 2, 5, 100):
            element = FIELD.alpha_pow(i)
            poly = FIELD.minimal_polynomial(element)
            assert FIELD.poly_eval(poly, element) == 0

    def test_minimal_poly_has_binary_coefficients(self):
        poly = FIELD.minimal_polynomial(FIELD.alpha_pow(3))
        assert all(c in (0, 1) for c in poly)

    def test_minimal_poly_of_zero_is_x(self):
        assert FIELD.minimal_polynomial(0) == [0, 1]

    def test_conjugates_share_minimal_polynomial(self):
        e = FIELD.alpha_pow(7)
        conj = FIELD.mul(e, e)
        assert FIELD.minimal_polynomial(e) == FIELD.minimal_polynomial(conj)


class TestPolyMul:
    def test_poly_mul_identity(self):
        p = [3, 1, 4]
        assert FIELD.poly_mul(p, [1]) == p

    def test_poly_mul_degree_adds(self):
        a, b = [1, 1], [1, 0, 1]
        assert len(FIELD.poly_mul(a, b)) == len(a) + len(b) - 1
