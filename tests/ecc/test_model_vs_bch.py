"""Cross-validation: the analytic failure model vs the bit-exact codec.

The lifetime simulator trusts :func:`codeword_failure_prob` to stand in
for actually running BCH decodes.  Here we Monte-Carlo the real codec at
an RBER where failures are common enough to measure and check the
analytic prediction lands within sampling error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecc.bch import BCHCode, DecodeFailure
from repro.ecc.model import CodewordSpec, codeword_failure_prob


@pytest.mark.parametrize("rber,trials", [(0.02, 400)])
def test_analytic_failure_matches_monte_carlo(rber, trials):
    code = BCHCode(m=6, t=3)  # n=63: small enough for many trials
    spec = CodewordSpec(n=code.n, k=code.k, t=code.t)
    rng = np.random.default_rng(7)
    failures = 0
    for _ in range(trials):
        data = rng.integers(0, 2, size=code.k).astype(np.uint8)
        cw = code.encode(data)
        flips = rng.random(code.n) < rber
        rx = cw ^ flips.astype(np.uint8)
        nerrors = int(flips.sum())
        try:
            result = code.decode(rx)
            # a "success" with wrong data is a miscorrection = failure
            if not np.array_equal(result.data_bits, data):
                failures += 1
            elif nerrors > code.t:
                # lucky alias: counts as failure per the analytic model
                failures += 1
        except DecodeFailure:
            failures += 1
    observed = failures / trials
    predicted = codeword_failure_prob(spec, rber)
    # binomial sampling error: 3 sigma
    sigma = (predicted * (1 - predicted) / trials) ** 0.5
    assert abs(observed - predicted) <= max(3 * sigma, 0.03)


def test_decoder_success_boundary_is_exactly_t():
    """Deterministic check: exactly t errors decode, t+1 do not (for a
    pattern that does not alias to within-t of another codeword)."""
    code = BCHCode(m=6, t=3)
    rng = np.random.default_rng(11)
    data = rng.integers(0, 2, size=code.k).astype(np.uint8)
    cw = code.encode(data)
    rx = cw.copy()
    for p in (1, 20, 40):
        rx[p] ^= 1
    assert np.array_equal(code.decode(rx).data_bits, data)
    rx[55] ^= 1  # 4th error
    try:
        result = code.decode(rx)
        assert not np.array_equal(result.data_bits, data)
    except DecodeFailure:
        pass
