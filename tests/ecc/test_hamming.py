"""Extended Hamming SEC-DED behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.hamming import HammingSecDed

CODE = HammingSecDed(r=4)  # n=16, k=11


class TestShape:
    def test_parameters(self):
        assert CODE.n == 16
        assert CODE.k == 11

    def test_r6_matches_weak_policy_spec(self):
        code = HammingSecDed(r=6)
        assert code.n == 64
        assert code.k == 57

    def test_too_small_r_rejected(self):
        with pytest.raises(ValueError):
            HammingSecDed(r=1)

    def test_wrong_lengths_rejected(self):
        with pytest.raises(ValueError):
            CODE.encode(np.zeros(5, np.uint8))
        with pytest.raises(ValueError):
            CODE.decode(np.zeros(5, np.uint8))


class TestCorrection:
    @given(pos=st.integers(min_value=0, max_value=15), seed=st.integers(0, 500))
    @settings(max_examples=80, deadline=None)
    def test_corrects_any_single_error(self, pos, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, size=CODE.k).astype(np.uint8)
        cw = CODE.encode(data)
        rx = cw.copy()
        rx[pos] ^= 1
        result = CODE.decode(rx)
        assert np.array_equal(result.data_bits, data)
        assert result.corrected
        assert not result.detected_uncorrectable

    def test_clean_word_decodes_without_correction(self, rng):
        data = rng.integers(0, 2, size=CODE.k).astype(np.uint8)
        result = CODE.decode(CODE.encode(data))
        assert np.array_equal(result.data_bits, data)
        assert not result.corrected

    @given(seed=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_detects_double_errors(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, size=CODE.k).astype(np.uint8)
        cw = CODE.encode(data)
        p1, p2 = rng.choice(CODE.n, size=2, replace=False)
        rx = cw.copy()
        rx[p1] ^= 1
        rx[p2] ^= 1
        result = CODE.decode(rx)
        assert result.detected_uncorrectable
