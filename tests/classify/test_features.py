"""Feature extraction shape and semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classify.features import FEATURE_NAMES, extract_features, feature_matrix
from repro.host.files import FileAttributes, FileKind, FileRecord


def make_record(kind=FileKind.PHOTO, **attrs) -> FileRecord:
    return FileRecord(
        file_id=1, path="/x", kind=kind, size_bytes=5000,
        attributes=FileAttributes(**attrs),
    )


class TestExtract:
    def test_vector_length_matches_names(self):
        vec = extract_features(make_record(), now_years=1.0)
        assert vec.shape == (len(FEATURE_NAMES),)

    def test_kind_onehot_is_exclusive(self):
        vec = extract_features(make_record(FileKind.VIDEO), now_years=1.0)
        onehot = vec[12:]
        assert onehot.sum() == 1.0
        hot_index = int(np.argmax(onehot))
        assert FEATURE_NAMES[12 + hot_index] == "kind_video"

    def test_boolean_attributes_map_to_01(self):
        vec = extract_features(
            make_record(user_favorite=True, is_screenshot=False), now_years=1.0
        )
        names = dict(zip(FEATURE_NAMES, vec))
        assert names["user_favorite"] == 1.0
        assert names["is_screenshot"] == 0.0

    def test_counts_are_log_scaled(self):
        vec = extract_features(make_record(access_count=0), 1.0)
        names = dict(zip(FEATURE_NAMES, vec))
        assert names["log_access_count"] == 0.0
        vec2 = extract_features(make_record(access_count=100), 1.0)
        names2 = dict(zip(FEATURE_NAMES, vec2))
        assert names2["log_access_count"] == pytest.approx(np.log1p(100))

    def test_age_uses_now(self):
        record = make_record(created_years=1.0)
        names = dict(zip(FEATURE_NAMES, extract_features(record, 3.0)))
        assert names["age_years"] == pytest.approx(2.0)


class TestMatrix:
    def test_matrix_stacks_rows(self):
        records = [make_record(), make_record(FileKind.DOCUMENT)]
        X = feature_matrix(records, now_years=1.0)
        assert X.shape == (2, len(FEATURE_NAMES))

    def test_empty_matrix(self):
        X = feature_matrix([], now_years=1.0)
        assert X.shape == (0, len(FEATURE_NAMES))
