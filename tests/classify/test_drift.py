"""Preference drift model (§4.4 re-evaluation substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classify.corpus import CorpusConfig, generate_corpus
from repro.classify.drift import DriftConfig, drift_corpus
from repro.host.files import SYSTEM_KINDS


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusConfig(n_files=1500), seed=99)


class TestDrift:
    def test_preserves_corpus_size_and_ids(self, corpus):
        drifted = drift_corpus(corpus, 1.0, seed=1)
        assert len(drifted) == len(corpus)
        assert [f.record.file_id for f in drifted] == [
            f.record.file_id for f in corpus
        ]

    def test_system_files_untouched(self, corpus):
        drifted = drift_corpus(corpus, 1.0, seed=1)
        for before, after in zip(corpus, drifted):
            if before.record.kind in SYSTEM_KINDS:
                assert after is before

    def test_values_actually_move(self, corpus):
        drifted = drift_corpus(corpus, 1.0, seed=1)
        moved = sum(
            1 for b, a in zip(corpus, drifted)
            if b.record.kind not in SYSTEM_KINDS and a.latent_value != b.latent_value
        )
        user_files = sum(1 for f in corpus if f.record.kind not in SYSTEM_KINDS)
        assert moved > 0.95 * user_files

    def test_values_stay_in_unit_interval(self, corpus):
        drifted = drift_corpus(corpus, 3.0, seed=2)
        assert all(0.0 <= f.latent_value <= 1.0 for f in drifted)

    def test_labels_recomputed_from_thresholds(self, corpus):
        config = CorpusConfig()
        drifted = drift_corpus(corpus, 1.0, corpus_config=config, seed=3)
        for f in drifted:
            if f.record.kind in SYSTEM_KINDS:
                continue
            assert f.critical == (f.latent_value >= config.critical_value_threshold)
            assert f.user_would_delete == (
                f.latent_value <= config.delete_value_threshold
            )

    def test_some_labels_flip_over_time(self, corpus):
        drifted = drift_corpus(corpus, 2.0, seed=4)
        flips = sum(1 for b, a in zip(corpus, drifted) if b.critical != a.critical)
        assert flips > 0.05 * len(corpus)

    def test_mean_reversion_pulls_toward_long_run(self, corpus):
        config = DriftConfig(volatility=0.0, reversion=1.0, long_run_mean=0.4)
        drifted = drift_corpus(corpus, 1.0, config=config, seed=5)
        user = [
            (b.latent_value, a.latent_value)
            for b, a in zip(corpus, drifted)
            if b.record.kind not in SYSTEM_KINDS
        ]
        for before, after in user:
            assert abs(after - 0.4) <= abs(before - 0.4) + 1e-9

    def test_valued_files_keep_fresh_access_times(self, corpus):
        drifted = drift_corpus(corpus, 1.0, seed=6)
        now = CorpusConfig().now_years + 1.0
        high = [f for f in drifted if f.latent_value > 0.85
                and f.record.kind not in SYSTEM_KINDS]
        if not high:
            pytest.skip("no high-value files after drift")
        fresh = sum(1 for f in high if f.record.attributes.last_access_years == now)
        assert fresh / len(high) > 0.8

    def test_deterministic_under_seed(self, corpus):
        a = drift_corpus(corpus, 1.0, seed=7)
        b = drift_corpus(corpus, 1.0, seed=7)
        assert all(x.latent_value == y.latent_value for x, y in zip(a, b))

    def test_original_corpus_not_mutated(self, corpus):
        before = [(f.latent_value, f.record.attributes.access_count) for f in corpus]
        drift_corpus(corpus, 2.0, seed=8)
        after = [(f.latent_value, f.record.attributes.access_count) for f in corpus]
        assert before == after
