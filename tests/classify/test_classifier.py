"""FileClassifier: rule layer, thresholds, evaluation metrics."""

from __future__ import annotations

import pytest

from repro.classify.classifier import FileClassifier, train_classifier
from repro.classify.corpus import CorpusConfig, generate_corpus
from repro.host.files import FileAttributes, FileKind, FileRecord
from repro.host.hints import Placement

NOW = 2.0


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusConfig(n_files=4000), seed=11)


@pytest.fixture(scope="module")
def trained(corpus):
    return train_classifier(corpus, now_years=NOW, seed=11)


class TestTraining:
    def test_accuracy_reasonable(self, trained):
        _, metrics = trained
        assert metrics.accuracy > 0.75

    def test_naive_bayes_also_trains(self, corpus):
        _, metrics = train_classifier(corpus, now_years=NOW, kind="naive_bayes", seed=11)
        assert metrics.accuracy > 0.7

    def test_unknown_kind_rejected(self, corpus):
        with pytest.raises(ValueError):
            train_classifier(corpus, now_years=NOW, kind="svm")

    def test_conservative_demotion(self, trained):
        """§4.3: the classifier errs on the side of caution -- few truly
        critical files should land on SPARE."""
        _, metrics = trained
        assert metrics.critical_demotion_rate < 0.2

    def test_most_files_still_demoted(self, trained):
        """The density gain requires most low-value data on SPARE."""
        _, metrics = trained
        assert metrics.spare_fraction > 0.35


class TestRuleLayer:
    def test_system_files_never_demoted(self, trained):
        classifier, _ = trained
        record = FileRecord(
            file_id=1, path="/sys/lib", kind=FileKind.OS_SYSTEM, size_bytes=100,
            attributes=FileAttributes(),
        )
        hint = classifier.classify(record, NOW)
        assert hint.placement is Placement.SYS
        assert hint.confidence == 1.0

    def test_old_idle_screenshot_demoted(self, trained):
        classifier, _ = trained
        record = FileRecord(
            file_id=2, path="/p/s.png", kind=FileKind.PHOTO, size_bytes=100_000,
            attributes=FileAttributes(
                created_years=0.1, last_access_years=0.1, is_screenshot=True,
                duplicate_count=4, access_count=1,
            ),
        )
        hint = classifier.classify(record, NOW)
        assert hint.placement is Placement.SPARE

    def test_favorite_family_photo_stays_sys(self, trained):
        classifier, _ = trained
        record = FileRecord(
            file_id=3, path="/p/f.jpg", kind=FileKind.PHOTO, size_bytes=100_000,
            attributes=FileAttributes(
                created_years=1.8, last_access_years=2.0, user_favorite=True,
                has_known_faces=True, access_count=80,
            ),
        )
        hint = classifier.classify(record, NOW)
        assert hint.placement is Placement.SYS


class TestThreshold:
    def test_invalid_threshold_rejected(self, trained):
        classifier, _ = trained
        with pytest.raises(ValueError):
            FileClassifier(classifier.model, demote_threshold=0.0)

    def test_higher_threshold_demotes_more(self, corpus):
        """A3 ablation axis: conservativeness trades density for safety."""
        _, loose = train_classifier(corpus, NOW, demote_threshold=0.6, seed=11)
        _, tight = train_classifier(corpus, NOW, demote_threshold=0.1, seed=11)
        assert loose.spare_fraction > tight.spare_fraction
        assert loose.critical_demotion_rate >= tight.critical_demotion_rate

    def test_empty_test_set_rejected(self, trained):
        classifier, _ = trained
        with pytest.raises(ValueError):
            classifier.evaluate([], NOW)


class TestBatch:
    def test_classify_many_matches_single(self, trained, corpus):
        classifier, _ = trained
        records = [f.record for f in corpus[:20]]
        batch = classifier.classify_many(records, NOW)
        for record, hint in zip(records, batch):
            assert hint == classifier.classify(record, NOW)
