"""Auto-delete predictor: accuracy band and ranking behaviour."""

from __future__ import annotations

import pytest

from repro.classify.auto_delete import train_auto_delete
from repro.classify.corpus import CorpusConfig, generate_corpus
from repro.host.files import FileAttributes, FileKind, FileRecord

NOW = 2.0


@pytest.fixture(scope="module")
def setup():
    corpus = generate_corpus(CorpusConfig(n_files=4000), seed=23)
    predictor, metrics = train_auto_delete(corpus, now_years=NOW, seed=23)
    return corpus, predictor, metrics


class TestAccuracy:
    def test_accuracy_near_cited_79_percent(self, setup):
        """§4.3 cites 79% deletion-prediction accuracy [Khan et al.].
        Our synthetic corpus should land at or above that operating point."""
        _, _, metrics = setup
        assert metrics.accuracy >= 0.75

    def test_precision_and_recall_nontrivial(self, setup):
        _, _, metrics = setup
        assert metrics.precision > 0.55
        assert metrics.recall > 0.5


class TestRanking:
    def test_ranking_sorted_descending(self, setup):
        corpus, predictor, _ = setup
        records = [f.record for f in corpus[:200]]
        ranked = predictor.rank_for_deletion(records, NOW)
        probs = [p for _, p in ranked]
        assert probs == sorted(probs, reverse=True)

    def test_ranking_excludes_system_files(self, setup):
        corpus, predictor, _ = setup
        records = [f.record for f in corpus[:300]]
        ranked = predictor.rank_for_deletion(records, NOW)
        assert all(not r.is_system for r, _ in ranked)

    def test_ranking_of_empty_input(self, setup):
        _, predictor, _ = setup
        assert predictor.rank_for_deletion([], NOW) == []

    def test_deletable_ranked_above_keeper(self, setup):
        _, predictor, _ = setup
        junk = FileRecord(
            file_id=1, path="/dl/x.apk", kind=FileKind.DOWNLOAD, size_bytes=10_000_000,
            attributes=FileAttributes(
                created_years=0.1, last_access_years=0.1, duplicate_count=5,
                is_screenshot=False, access_count=1,
            ),
        )
        keeper = FileRecord(
            file_id=2, path="/p/wedding.mp4", kind=FileKind.VIDEO, size_bytes=10_000_000,
            attributes=FileAttributes(
                created_years=1.5, last_access_years=2.0, user_favorite=True,
                has_known_faces=True, access_count=120,
            ),
        )
        assert predictor.p_delete(junk, NOW) > predictor.p_delete(keeper, NOW)

    def test_empty_test_set_rejected(self, setup):
        _, predictor, _ = setup
        with pytest.raises(ValueError):
            predictor.evaluate([], NOW)
