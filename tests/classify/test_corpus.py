"""Synthetic corpus: composition, labels, determinism."""

from __future__ import annotations

import pytest

from repro.classify.corpus import CorpusConfig, generate_corpus
from repro.host.files import MEDIA_KINDS, SYSTEM_KINDS


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CorpusConfig(n_files=3000), seed=42)


class TestComposition:
    def test_size(self, corpus):
        assert len(corpus) == 3000

    def test_media_majority(self, corpus):
        """§4.2: media comprises over half of personal files."""
        media = sum(1 for f in corpus if f.record.kind in MEDIA_KINDS)
        assert media / len(corpus) > 0.5

    def test_system_files_always_critical_never_deleted(self, corpus):
        for f in corpus:
            if f.record.kind in SYSTEM_KINDS:
                assert f.critical
                assert not f.user_would_delete

    def test_label_rates_plausible(self, corpus):
        crit = sum(f.critical for f in corpus) / len(corpus)
        dele = sum(f.user_would_delete for f in corpus) / len(corpus)
        assert 0.25 < crit < 0.65
        assert 0.1 < dele < 0.5

    def test_unique_paths_and_ids(self, corpus):
        assert len({f.record.path for f in corpus}) == len(corpus)
        assert len({f.record.file_id for f in corpus}) == len(corpus)

    def test_attributes_within_time_range(self, corpus):
        for f in corpus[:200]:
            assert 0.0 <= f.record.attributes.created_years <= 2.0
            assert f.record.attributes.last_access_years <= 2.0 + 1e-9


class TestLabelStructure:
    def test_latent_value_correlates_with_critical(self, corpus):
        """High-value files should be labelled critical far more often."""
        user_files = [f for f in corpus if f.record.kind not in SYSTEM_KINDS]
        high = [f for f in user_files if f.latent_value > 0.8]
        low = [f for f in user_files if f.latent_value < 0.2]
        assert high and low
        high_crit = sum(f.critical for f in high) / len(high)
        low_crit = sum(f.critical for f in low) / len(low)
        assert high_crit > low_crit + 0.4

    def test_favorites_have_higher_value_on_average(self, corpus):
        user_files = [f for f in corpus if f.record.kind not in SYSTEM_KINDS]
        fav = [f.latent_value for f in user_files if f.record.attributes.user_favorite]
        not_fav = [f.latent_value for f in user_files if not f.record.attributes.user_favorite]
        assert sum(fav) / len(fav) > sum(not_fav) / len(not_fav)


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = generate_corpus(CorpusConfig(n_files=100), seed=7)
        b = generate_corpus(CorpusConfig(n_files=100), seed=7)
        for fa, fb in zip(a, b):
            assert fa.record.path == fb.record.path
            assert fa.critical == fb.critical
            assert fa.latent_value == fb.latent_value

    def test_different_seed_differs(self):
        a = generate_corpus(CorpusConfig(n_files=100), seed=7)
        b = generate_corpus(CorpusConfig(n_files=100), seed=8)
        assert any(fa.latent_value != fb.latent_value for fa, fb in zip(a, b))
