"""Naive Bayes and logistic regression on controlled data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.classify.logistic import LogisticRegression
from repro.classify.naive_bayes import GaussianNaiveBayes


def separable_data(rng, n=400, gap=4.0):
    X0 = rng.normal(0.0, 1.0, size=(n // 2, 3))
    X1 = rng.normal(gap, 1.0, size=(n // 2, 3))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


class TestGaussianNB:
    def test_learns_separable_classes(self, rng):
        X, y = separable_data(rng)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.98

    def test_probabilities_sum_to_one(self, rng):
        X, y = separable_data(rng)
        model = GaussianNaiveBayes().fit(X, y)
        probs = model.predict_proba(X[:20])
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianNaiveBayes().predict(np.zeros((1, 3)))

    def test_misaligned_shapes_rejected(self, rng):
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit(np.zeros((10, 3)), np.zeros(9))

    def test_handles_constant_feature(self, rng):
        X, y = separable_data(rng)
        X = np.hstack([X, np.ones((X.shape[0], 1))])  # zero-variance column
        model = GaussianNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_multiclass(self, rng):
        X = np.vstack([rng.normal(c * 5, 1, size=(50, 2)) for c in range(3)])
        y = np.repeat([0, 1, 2], 50)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.95


class TestLogisticRegression:
    def test_learns_separable_classes(self, rng):
        X, y = separable_data(rng)
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.98

    def test_probabilities_calibrated_direction(self, rng):
        X, y = separable_data(rng)
        model = LogisticRegression().fit(X, y)
        p = model.predict_proba(X)
        assert p[y == 1].mean() > 0.8
        assert p[y == 0].mean() < 0.2

    def test_nonbinary_labels_rejected(self, rng):
        X, _ = separable_data(rng)
        with pytest.raises(ValueError):
            LogisticRegression().fit(X, np.full(X.shape[0], 2))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.zeros((1, 3)))

    def test_threshold_shifts_predictions(self, rng):
        X, y = separable_data(rng, gap=1.0)  # overlapping classes
        model = LogisticRegression().fit(X, y)
        permissive = model.predict(X, threshold=0.1).sum()
        strict = model.predict(X, threshold=0.9).sum()
        assert permissive > strict

    def test_regularization_shrinks_weights(self, rng):
        X, y = separable_data(rng)
        small = LogisticRegression(l2=1e-4).fit(X, y)
        large = LogisticRegression(l2=1.0).fit(X, y)
        assert np.linalg.norm(large.weights_) < np.linalg.norm(small.weights_)

    def test_deterministic(self, rng):
        X, y = separable_data(rng)
        a = LogisticRegression().fit(X, y)
        b = LogisticRegression().fit(X, y)
        assert np.array_equal(a.weights_, b.weights_)
