"""Golden regression tests for the paper's headline numbers.

The benchmark harness checks these claims with full context; this fast
suite pins the same numbers as plain unit tests so an accidental
recalibration anywhere in the stack fails the ordinary test run, not
just a benchmark pass.  Every value cites its paper location.
"""

from __future__ import annotations

import pytest

from repro.carbon.credits import EU_ETS_PEAK_2022, price_increase_fraction
from repro.carbon.embodied import intensity_kg_per_gb, mixed_intensity_kg_per_gb
from repro.carbon.market import MARKET_SHARE_2020, personal_share
from repro.carbon.projection import project
from repro.core.config import default_config
from repro.core.partitions import capacity_gain_over, density_gain
from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.reliability import ENDURANCE_TABLE


class TestHeadlineNumbers:
    def test_density_gains_s41(self):
        """§4.1: QLC +33%, PLC +66% over TLC."""
        assert CellTechnology.QLC.density_gain_over(CellTechnology.TLC) == pytest.approx(1 / 3)
        assert CellTechnology.PLC.density_gain_over(CellTechnology.TLC) == pytest.approx(2 / 3)

    def test_sos_split_gains_s42(self):
        """§4.2: +50% vs TLC, ~+10% vs QLC (exact: 12.5%)."""
        config = default_config()
        assert density_gain(config) == pytest.approx(0.50)
        assert capacity_gain_over(config, CellTechnology.QLC) == pytest.approx(0.125)

    def test_sos_carbon_cut(self):
        """Density +50% -> 2/3 the silicon -> intensity 0.108 kg/GB."""
        sos = mixed_intensity_kg_per_gb({
            native_mode(CellTechnology.PLC): 0.5,
            pseudo_mode(CellTechnology.PLC, 4): 0.5,
        })
        assert sos == pytest.approx(0.108)
        assert 1 - sos / intensity_kg_per_gb(CellTechnology.TLC) == pytest.approx(
            0.325, abs=1e-3
        )

    def test_2021_emissions_s1(self):
        """§1: 765 EB -> ~122 Mt -> ~28M people."""
        p2021 = project()[0]
        assert p2021.capacity_eb == pytest.approx(765.0)
        assert p2021.emissions_mt == pytest.approx(122.4, rel=0.01)
        assert p2021.people_equivalent_millions == pytest.approx(27.8, abs=0.5)

    def test_2030_projection_s1(self):
        """§1/abstract: >150M people, ~1.7% of world emissions."""
        p2030 = project()[-1]
        assert p2030.people_equivalent_millions > 150.0
        assert p2030.share_of_world_2030 == pytest.approx(0.0174, abs=0.002)

    def test_carbon_credit_40pct_s3(self):
        """§3: $111/t on $45/TB QLC ~ 40%."""
        assert price_increase_fraction(EU_ETS_PEAK_2022, 45.0) == pytest.approx(
            0.395, abs=0.005
        )

    def test_market_shares_fig1(self):
        """Figure 1: 38/32/14/8/8, personal ~half."""
        assert MARKET_SHARE_2020["smartphone"] == 0.38
        assert MARKET_SHARE_2020["ssd"] == 0.32
        assert personal_share(include_memory_cards=False) == pytest.approx(0.46)

    def test_endurance_ratios_s22_s42(self):
        """§2.2/§4.2: SLC 100K, QLC 1K, PLC = QLC/2, TLC/PLC in [6,10]."""
        table = ENDURANCE_TABLE
        assert table[CellTechnology.SLC].rated_pec == 100_000
        assert table[CellTechnology.QLC].rated_pec == 1_000
        assert table[CellTechnology.QLC].rated_pec == 2 * table[CellTechnology.PLC].rated_pec
        ratio = table[CellTechnology.TLC].rated_pec / table[CellTechnology.PLC].rated_pec
        assert 6 <= ratio <= 10

    def test_trim_target_s45(self):
        """§4.5: free ~3% of capacity."""
        assert default_config().trim_free_target == pytest.approx(0.03)
