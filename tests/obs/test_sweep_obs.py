"""Sweep-level observability: worker placement must not leak.

A faulty lifetime grid run serially and with two worker processes must
roll up to the identical merged metrics snapshot (timings stripped --
wall time is the one legitimately nondeterministic quantity) and the
identical seed-ordered merged trace.
"""

from __future__ import annotations

import pytest

from repro.obs import strip_timings
from repro.runner.points import lifetime_point
from repro.runner.sweep import Sweep, run_sweep

FAULTS = {
    "block_infant_mortality": 0.05,
    "transient_read_rate": 0.2,
    "power_loss_rate": 0.05,
    "cloud_outage_rate": 0.02,
    "cloud_outage_days": 3,
}


def _sweep() -> Sweep:
    grid = tuple(
        {
            "build": "tlc_baseline",
            "capacity_gb": 32.0,
            "mix": "typical",
            "days": 180,
            "workload_seed": 20 + i,
            "faults": FAULTS,
        }
        for i in range(3)
    )
    return Sweep(name="obs-sweep-test", fn=lifetime_point, grid=grid, base_seed=7)


@pytest.fixture(scope="module")
def serial_and_parallel():
    serial = run_sweep(_sweep(), jobs=1, collect_obs=True)
    parallel = run_sweep(_sweep(), jobs=2, collect_obs=True)
    return serial, parallel


def test_every_computed_point_carries_an_obs_payload(serial_and_parallel):
    serial, parallel = serial_and_parallel
    for outcome in (serial, parallel):
        assert len(outcome.points) == 3
        for point in outcome.points:
            assert point.obs is not None
            assert point.obs["metrics"]["counters"]["engine.days"] == 180
            assert point.obs["events"]


def test_serial_and_parallel_merge_to_identical_metrics(serial_and_parallel):
    serial, parallel = serial_and_parallel
    assert strip_timings(serial.merged_metrics()) == strip_timings(
        parallel.merged_metrics()
    )


def test_serial_and_parallel_traces_identical_and_seed_ordered(serial_and_parallel):
    serial, parallel = serial_and_parallel
    trace = serial.merged_trace()
    assert trace == parallel.merged_trace()
    # seed-ordered: point tags are non-decreasing in grid order and
    # sim-time-ordered within each point
    points = [event["point"] for event in trace]
    assert points == sorted(points)
    assert set(points) == {0, 1, 2}
    for index in set(points):
        times = [e["t"] for e in trace if e["point"] == index]
        assert times == sorted(times)


def test_cache_hits_carry_no_payload(tmp_path):
    sweep = _sweep()
    first = run_sweep(sweep, jobs=1, cache_dir=tmp_path, collect_obs=True)
    assert all(p.obs is not None for p in first.points)
    resumed = run_sweep(sweep, jobs=1, cache_dir=tmp_path, collect_obs=True)
    assert all(p.cached for p in resumed.points)
    assert all(p.obs is None for p in resumed.points)
    assert resumed.merged_metrics() is None
    assert resumed.merged_trace() == []
