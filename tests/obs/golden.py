"""The golden-trace scenario shared by the regression test and its
regenerator.

Regenerate the snapshot after an *intentional* behavior change with::

    PYTHONPATH=src:tests/obs python -m golden

(or simply run this file with the repo's ``src`` on ``PYTHONPATH``).
"""

from __future__ import annotations

from pathlib import Path

from repro.faults import FaultConfig, FaultPlan
from repro.obs import observed, write_trace_jsonl
from repro.sim.baselines import build_sos
from repro.sim.engine import run_lifetime
from repro.workloads.mobile import MobileWorkload, WorkloadConfig

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace.jsonl"

#: One simulated year of the heavy mix on a 32 GB SOS device with a
#: realistic fault population: exercises every epoch-model event kind
#: (retirement, resuscitation, scrub refresh, torn program, transient
#: read, cloud outage).
DAYS = 365
WORKLOAD_SEED = 13
FAULT_SEED = 13
FAULTS = FaultConfig(
    block_infant_mortality=0.08,
    transient_read_rate=0.3,
    power_loss_rate=0.1,
    cloud_outage_rate=0.03,
    cloud_outage_days=4,
)


def run_golden_scenario() -> list[dict]:
    """Run the fixed-seed scenario and return its event list."""
    summaries = MobileWorkload(
        WorkloadConfig(mix="heavy", days=DAYS, seed=WORKLOAD_SEED)
    ).daily_summaries()
    build = build_sos(32.0)
    targets = {
        name: partition.spec.n_groups
        for name, partition in build.device.partitions.items()
    }
    plan = FaultPlan.generate(
        FAULTS, seed=FAULT_SEED, horizon_days=DAYS, targets=targets
    )
    with observed() as obs:
        run_lifetime(build, summaries, fault_plan=plan)
    return obs.events


if __name__ == "__main__":
    events = run_golden_scenario()
    count = write_trace_jsonl(GOLDEN_PATH, events)
    print(f"wrote {count} events to {GOLDEN_PATH}")
