"""Golden-trace regression test.

The event trace for a fixed-seed faulty lifetime run is snapshotted under
``tests/obs/data/golden_trace.jsonl`` and compared byte-for-byte.  Any
drift in event ordering, field names, or simulated timestamps is a
behavior change and must be reviewed; after an intentional change,
regenerate with ``PYTHONPATH=src:tests/obs python -m golden``.
"""

from __future__ import annotations

from collections import Counter

from golden import GOLDEN_PATH, run_golden_scenario
from repro.obs import event_line, read_trace_jsonl


def test_trace_matches_golden_byte_for_byte():
    events = run_golden_scenario()
    expected = GOLDEN_PATH.read_text().splitlines()
    assert [event_line(e) for e in events] == expected


def test_golden_covers_every_epoch_event_kind():
    kinds = Counter(e["kind"] for e in read_trace_jsonl(GOLDEN_PATH))
    assert set(kinds) == {
        "block_retired",
        "block_resuscitated",
        "scrub_refresh",
        "torn_program",
        "transient_read",
        "cloud_outage_day",
    }
    assert sum(kinds.values()) == 426


def test_golden_timestamps_are_sim_time_and_monotone():
    events = read_trace_jsonl(GOLDEN_PATH)
    times = [e["t"] for e in events]
    assert all(0.0 <= t <= 1.0 for t in times)  # one simulated year
    assert times == sorted(times)
