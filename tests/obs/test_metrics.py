"""Metrics registry: instruments, snapshots, merge semantics."""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    default_histogram_bounds,
    empty_snapshot,
    merge_snapshots,
    strip_timings,
)
from repro.obs.metrics import Histogram


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.snapshot()["counters"]["a"] == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a").inc(-1)

    def test_gauge_last_value_wins_locally(self):
        registry = MetricsRegistry()
        registry.gauge("level").set(3.0)
        registry.gauge("level").set(1.5)
        assert registry.snapshot()["gauges"]["level"] == 1.5

    def test_unset_gauge_not_in_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge("level")
        assert "level" not in registry.snapshot()["gauges"]

    def test_histogram_bins_values(self):
        hist = Histogram(bounds=[1.0, 10.0])
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        # <=1.0 | <=10.0 | overflow
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.total == pytest.approx(106.5)

    def test_histogram_default_bounds_are_log_spaced(self):
        bounds = default_histogram_bounds()
        assert bounds == sorted(bounds)
        ratios = {round(b / a, 6) for a, b in zip(bounds, bounds[1:])}
        assert len(ratios) == 1  # constant multiplicative step

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=[10.0, 1.0])

    def test_span_record_accumulates(self):
        registry = MetricsRegistry()
        registry.span_record("phase", 0.5)
        registry.span_record("phase", 0.25)
        snap = registry.snapshot()["spans"]["phase"]
        assert snap["calls"] == 2
        assert snap["wall_s"] == pytest.approx(0.75)


class TestMerge:
    def _snap(self, **counters):
        registry = MetricsRegistry()
        for name, value in counters.items():
            registry.counter(name).inc(value)
        return registry.snapshot()

    def test_counters_add(self):
        merged = merge_snapshots(self._snap(a=2, b=1), self._snap(a=3))
        assert merged["counters"] == {"a": 5, "b": 1}

    def test_empty_snapshot_is_identity(self):
        snap = self._snap(a=2)
        assert merge_snapshots(snap, empty_snapshot()) == merge_snapshots(snap)

    def test_gauges_take_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("level").set(2.0)
        b.gauge("level").set(7.0)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["gauges"]["level"] == 7.0

    def test_histograms_merge_bin_for_bin(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=[1.0, 10.0]).observe(0.5)
        b.histogram("h", bounds=[1.0, 10.0]).observe(5.0)
        b.histogram("h").observe(50.0)
        merged = merge_snapshots(a.snapshot(), b.snapshot())["histograms"]["h"]
        assert merged["counts"] == [1, 1, 1]
        assert merged["count"] == 3

    def test_mismatched_histogram_bounds_raise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=[1.0]).observe(0.5)
        b.histogram("h", bounds=[2.0]).observe(0.5)
        with pytest.raises(ValueError, match="mismatched bounds"):
            merge_snapshots(a.snapshot(), b.snapshot())

    def test_spans_add_calls_and_wall(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.span_record("phase", 1.0)
        b.span_record("phase", 2.0)
        merged = merge_snapshots(a.snapshot(), b.snapshot())["spans"]["phase"]
        assert merged == {"calls": 2, "wall_s": 3.0}


class TestStripTimings:
    def test_drops_wall_keeps_calls(self):
        registry = MetricsRegistry()
        registry.span_record("phase", 0.123)
        registry.counter("c").inc()
        stripped = strip_timings(registry.snapshot())
        assert stripped["spans"]["phase"] == {"calls": 1}
        assert stripped["counters"] == {"c": 1}

    def test_does_not_mutate_input(self):
        registry = MetricsRegistry()
        registry.span_record("phase", 0.5)
        snap = registry.snapshot()
        strip_timings(snap)
        assert snap["spans"]["phase"]["wall_s"] == pytest.approx(0.5)
