"""Observability must be invisible to the simulation.

Mirrors the zero-rate FaultPlan transparency test in
``tests/faults/test_plan.py``: with the default no-op observer a run is
*the* run, and turning collection on must not perturb a single sample --
the observer never touches RNG or simulation state, it only watches.
"""

from __future__ import annotations

from repro.obs import NULL_OBSERVER, get_observer, observed
from repro.runner.points import split_point
from repro.sim.baselines import build_sos
from repro.sim.engine import run_lifetime
from repro.workloads.mobile import MobileWorkload, WorkloadConfig

#: The A2 split-sweep scenario, scaled to test size.
A2_POINT = {
    "spare_fraction": 0.5,
    "capacity_gb": 32.0,
    "mix": "typical",
    "days": 150,
    "workload_seed": 11,
}


class TestNoOpSingleton:
    def test_default_observer_is_the_shared_singleton(self):
        assert get_observer() is NULL_OBSERVER

    def test_disabled_span_allocates_nothing(self):
        # one shared context manager for every span on the no-op path
        assert NULL_OBSERVER.span("gc") is NULL_OBSERVER.span("scrub")
        with NULL_OBSERVER.span("anything"):
            pass

    def test_disabled_operations_are_no_ops(self):
        assert NULL_OBSERVER.count("c") is None
        assert NULL_OBSERVER.gauge("g", 1.0) is None
        assert NULL_OBSERVER.observe("h", 1.0) is None
        assert NULL_OBSERVER.event("kind", t=0.0, field=1) is None
        assert NULL_OBSERVER.enabled is False

    def test_observed_restores_previous_observer(self):
        with observed() as obs:
            assert get_observer() is obs
        assert get_observer() is NULL_OBSERVER


class TestBitIdentical:
    def test_a2_scenario_identical_with_obs_on_and_off(self):
        """Disabled vs enabled observability: bit-identical LifetimeResult."""
        bare = split_point(dict(A2_POINT), seed=0)
        with observed() as obs:
            watched = split_point(dict(A2_POINT), seed=0)
        assert watched["result"].samples == bare["result"].samples
        assert watched["result"].capacity_gb == bare["result"].capacity_gb
        assert watched["gain"] == bare["gain"]
        assert watched["carbon_reduction"] == bare["carbon_reduction"]
        # and the watched run actually observed something
        assert obs.registry.snapshot()["counters"]["engine.days"] == A2_POINT["days"]

    def test_fixed_seed_run_identical_across_observed_repeats(self):
        summaries = MobileWorkload(
            WorkloadConfig(mix="typical", days=120, seed=5)
        ).daily_summaries()
        with observed() as first_obs:
            first = run_lifetime(build_sos(32.0), summaries)
        with observed() as second_obs:
            second = run_lifetime(build_sos(32.0), summaries)
        assert first.samples == second.samples
        assert first_obs.events == second_obs.events
