"""Property-based guarantees behind the parallel metric rollup.

The sweep coordinator merges per-point snapshots in grid order, but the
*correctness* claim is stronger: any grouping and any order of merges
yields the same snapshot, so worker count and scheduling can never leak
into merged metrics.  Counter increments and histogram observations are
drawn as integers (exactly representable, so sums are order-exact);
gauges merge by max, which is exact for any floats.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, empty_snapshot, merge_snapshots

_NAMES = st.sampled_from(["a", "b", "c.d", "engine.days"])

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("count"), _NAMES, st.integers(min_value=0, max_value=100)),
        st.tuples(st.just("gauge"), _NAMES, st.integers(min_value=-50, max_value=50)),
        st.tuples(st.just("hist"), _NAMES, st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("span"), _NAMES, st.integers(min_value=0, max_value=100)),
    ),
    max_size=30,
)


def _snapshot(ops) -> dict:
    registry = MetricsRegistry()
    for kind, name, value in ops:
        if kind == "count":
            registry.counter(name).inc(value)
        elif kind == "gauge":
            registry.gauge(name).set(float(value))
        elif kind == "hist":
            registry.histogram(name).observe(float(value))
        else:
            registry.span_record(name, float(value))
    return registry.snapshot()


@settings(max_examples=60, deadline=None)
@given(_OPS, _OPS, _OPS)
def test_merge_is_associative(ops_a, ops_b, ops_c):
    a, b, c = _snapshot(ops_a), _snapshot(ops_b), _snapshot(ops_c)
    assert merge_snapshots(merge_snapshots(a, b), c) == merge_snapshots(
        a, merge_snapshots(b, c)
    )


@settings(max_examples=60, deadline=None)
@given(_OPS, _OPS)
def test_merge_is_commutative(ops_a, ops_b):
    a, b = _snapshot(ops_a), _snapshot(ops_b)
    assert merge_snapshots(a, b) == merge_snapshots(b, a)


@settings(max_examples=60, deadline=None)
@given(_OPS)
def test_empty_snapshot_is_identity(ops):
    snap = _snapshot(ops)
    assert merge_snapshots(snap, empty_snapshot()) == merge_snapshots(snap)
    assert merge_snapshots(empty_snapshot(), snap) == merge_snapshots(snap)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=100_000), min_size=1, max_size=60),
    st.data(),
)
def test_histogram_bins_preserved_under_any_split_and_merge_order(values, data):
    """Splitting observations across registries and merging in any order
    reproduces the single-registry histogram bin-for-bin."""
    reference = MetricsRegistry()
    for value in values:
        reference.histogram("h").observe(float(value))
    expected = reference.snapshot()["histograms"]["h"]

    n_parts = data.draw(st.integers(min_value=1, max_value=min(6, len(values))))
    assignment = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=n_parts - 1),
            min_size=len(values), max_size=len(values),
        )
    )
    registries = [MetricsRegistry() for _ in range(n_parts)]
    for value, part in zip(values, assignment):
        registries[part].histogram("h").observe(float(value))
    order = data.draw(st.permutations(range(n_parts)))
    merged = merge_snapshots(*(registries[i].snapshot() for i in order))

    result = merged["histograms"]["h"]
    assert result["counts"] == expected["counts"]
    assert result["count"] == expected["count"]
    assert result["total"] == expected["total"]  # integer-valued: exact
