"""Shared fixtures for the SOS test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash import SMALL_GEOMETRY, CellTechnology, FlashChip


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def plc_chip() -> FlashChip:
    """A small PLC chip for bit-exact tests."""
    return FlashChip(SMALL_GEOMETRY, CellTechnology.PLC, seed=99)


@pytest.fixture
def tlc_chip() -> FlashChip:
    """A small TLC chip for bit-exact tests."""
    return FlashChip(SMALL_GEOMETRY, CellTechnology.TLC, seed=99)
