"""Shared fixtures for the SOS test suite.

The test tree is not a package, so child directories cannot import from
this file -- but pytest makes every fixture here visible to them.  The
two cross-cutting concerns live here once: deterministic RNG
construction (``make_rng``/``rng``) and the SIGALRM wall-clock clamp
that directories with hang-prone tests opt into via a tiny autouse
fixture (see ``tests/runner/conftest.py``, ``tests/integration/conftest.py``).
"""

from __future__ import annotations

import signal

import numpy as np
import pytest

from repro.flash import SMALL_GEOMETRY, CellTechnology, FlashChip

#: generous bound: the slowest legitimate clamped test finishes in well
#: under a minute even on a loaded single-core box
WALL_CLOCK_LIMIT_S = 120


@pytest.fixture(scope="session")
def make_rng():
    """Factory for deterministic, independent test RNGs.

    Prefer ``make_rng(seed)`` over inline ``np.random.default_rng(seed)``
    so every seeded stream in the suite is built the same way (and a
    future bit-generator swap is a one-line change here).
    """

    def _make(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    return _make


@pytest.fixture
def rng(make_rng) -> np.random.Generator:
    """Deterministic RNG for tests."""
    return make_rng(1234)


@pytest.fixture
def plc_chip() -> FlashChip:
    """A small PLC chip for bit-exact tests."""
    return FlashChip(SMALL_GEOMETRY, CellTechnology.PLC, seed=99)


@pytest.fixture
def tlc_chip() -> FlashChip:
    """A small TLC chip for bit-exact tests."""
    return FlashChip(SMALL_GEOMETRY, CellTechnology.TLC, seed=99)


@pytest.fixture(autouse=True)
def _suite_wall_clamp(wall_clock_clamp):
    """Global timeout guard: every test runs under the wall-clock clamp.

    The serve gateway added event-loop-driven tests on top of the
    worker-pool ones; any of them can hang on a regression.  Directory
    conftests that opted in earlier still work -- the clamp fixture is
    function-scoped, so pytest applies it once per test either way.
    """
    yield


@pytest.fixture
def wall_clock_clamp(request):
    """Fail the requesting test if it runs longer than the clamp.

    A regression in a scheduling loop (worker pools, backoff timers,
    day-loop convergence) shows up as a hang, not a failure; the clamp
    turns the hang into a loud, fast failure.  Not autouse -- a
    directory opts in with an autouse pass-through fixture.
    """

    def _abort(signum, frame):
        raise TimeoutError(
            f"{request.node.nodeid} exceeded the {WALL_CLOCK_LIMIT_S}s "
            "wall-clock clamp (scheduling loop hung?)"
        )

    previous = signal.signal(signal.SIGALRM, _abort)
    signal.alarm(WALL_CLOCK_LIMIT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
