"""Framed records: damage is *detected*, never mis-loaded.

The property the whole hardened-cache story rests on: for any framed
record, any single-byte corruption or truncation either still yields
the exact original payload (impossible for CRC32C over <2^31 bits to
miss a one-byte change -- but the property allows it) or raises
``RecordError``.  What must never happen is a *different* payload
coming back without an error.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner.record import (
    HEADER_SIZE,
    MAGIC,
    RecordError,
    crc32c,
    frame_record,
    unframe_record,
)


class TestCrc32c:
    def test_castagnoli_check_value(self):
        # the canonical CRC-32C check vector (RFC 3720 appendix B.4)
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty_is_zero(self):
        assert crc32c(b"") == 0

    def test_incremental_equals_one_shot(self):
        data = bytes(range(256)) * 3
        running = 0
        for i in range(0, len(data), 7):
            running = crc32c(data[i:i + 7], running)
        assert running == crc32c(data)


class TestFraming:
    def test_round_trip(self):
        payload = pickle.dumps({"value": [1, 2.5, "x"], "wall_s": 0.25})
        assert unframe_record(frame_record(payload)) == payload

    def test_header_layout(self):
        framed = frame_record(b"abc")
        assert framed[:4] == MAGIC
        assert len(framed) == HEADER_SIZE + 3

    def test_empty_payload_frames(self):
        assert unframe_record(frame_record(b"")) == b""

    @pytest.mark.parametrize("cut", [0, 1, HEADER_SIZE - 1])
    def test_truncated_header_is_detected(self, cut):
        framed = frame_record(b"payload")
        with pytest.raises(RecordError) as err:
            unframe_record(framed[:cut])
        assert err.value.reason == "truncated-header"

    def test_wrong_magic_is_detected(self):
        framed = bytearray(frame_record(b"payload"))
        framed[0] ^= 0xFF
        with pytest.raises(RecordError) as err:
            unframe_record(bytes(framed))
        assert err.value.reason == "bad-magic"

    def test_truncated_payload_is_detected(self):
        framed = frame_record(b"payload")
        with pytest.raises(RecordError) as err:
            unframe_record(framed[:-1])
        assert err.value.reason == "length-mismatch"

    def test_flipped_payload_byte_is_detected(self):
        framed = bytearray(frame_record(b"payload"))
        framed[HEADER_SIZE] ^= 0x01
        with pytest.raises(RecordError) as err:
            unframe_record(bytes(framed))
        assert err.value.reason == "crc-mismatch"


@st.composite
def _framed_and_damage(draw):
    payload = draw(st.binary(min_size=0, max_size=200))
    framed = frame_record(payload)
    mode = draw(st.sampled_from(["flip", "truncate", "extend"]))
    if mode == "flip":
        index = draw(st.integers(0, len(framed) - 1))
        bit = draw(st.integers(0, 7))
        damaged = bytearray(framed)
        damaged[index] ^= 1 << bit
        damaged = bytes(damaged)
    elif mode == "truncate":
        cut = draw(st.integers(0, len(framed) - 1))
        damaged = framed[:cut]
    else:
        damaged = framed + draw(st.binary(min_size=1, max_size=16))
    return payload, damaged


class TestDamageProperty:
    @settings(max_examples=200, deadline=None)
    @given(_framed_and_damage())
    def test_any_damage_is_detected_or_harmless(self, case):
        """Bit flips, truncation, and trailing garbage never yield a
        *different* payload silently -- wrong answers are worse than
        missing ones."""
        payload, damaged = case
        try:
            recovered = unframe_record(damaged)
        except RecordError:
            return  # detected: the cache treats it as a miss + quarantine
        assert recovered == payload
