"""The seeded filesystem shim: deterministic faults, inert when off."""

from __future__ import annotations

import errno

import pytest

from repro.chaos import (
    CHAOS_FS_ENV,
    REAL_FS,
    ChaosFs,
    FaultSpec,
    chaos_fs,
    get_fs,
    set_fs,
)
from repro.chaos.fs import _fs_from_env


class TestFaultSpec:
    @pytest.mark.parametrize("field", [
        "enospc_rate", "eio_rate", "torn_write_rate", "rename_fail_rate",
    ])
    def test_rates_validated(self, field):
        with pytest.raises(ValueError, match=field):
            FaultSpec(**{field: 1.5})

    def test_enospc_after_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(enospc_after=-1)


class TestDeterminism:
    def _drive(self, seed, tmp_path):
        fs = ChaosFs(seed=seed, spec=FaultSpec(
            eio_rate=0.3, torn_write_rate=0.3, rename_fail_rate=0.3,
        ))
        outcomes = []
        for i in range(20):
            target = tmp_path / f"f{i}"
            try:
                with open(target, "wb") as fh:
                    fs.write(fh, b"x" * 64)
                outcomes.append(("wrote", target.stat().st_size))
            except OSError as err:
                outcomes.append(("raised", err.errno))
        return outcomes, dict(fs.injected)

    def test_same_seed_same_faults(self, tmp_path):
        (a_dir := tmp_path / "a").mkdir()
        (b_dir := tmp_path / "b").mkdir()
        first, first_injected = self._drive(7, a_dir)
        second, second_injected = self._drive(7, b_dir)
        assert first == second
        assert first_injected == second_injected
        assert sum(first_injected.values()) > 0  # faults actually fired

    def test_different_seed_different_schedule(self, tmp_path):
        (a_dir := tmp_path / "a").mkdir()
        (b_dir := tmp_path / "b").mkdir()
        first, _ = self._drive(7, a_dir)
        second, _ = self._drive(8, b_dir)
        assert first != second

    def test_torn_write_persists_strict_prefix_silently(self, tmp_path):
        fs = ChaosFs(seed=0, spec=FaultSpec(torn_write_rate=1.0))
        target = tmp_path / "torn"
        with open(target, "wb") as fh:
            fs.write(fh, b"0123456789")  # succeeds: the nasty case
        assert 0 < target.stat().st_size < 10
        assert fs.injected["torn_write"] == 1

    def test_enospc_after_schedule(self, tmp_path):
        fs = ChaosFs(seed=0, spec=FaultSpec(enospc_after=2))
        for i in range(2):
            with open(tmp_path / f"ok{i}", "wb") as fh:
                fs.write(fh, b"data")
        with pytest.raises(OSError) as err:
            with open(tmp_path / "full", "wb") as fh:
                fs.write(fh, b"data")
        assert err.value.errno == errno.ENOSPC
        assert fs.injected["enospc"] == 1

    def test_rename_fail(self, tmp_path):
        fs = ChaosFs(seed=0, spec=FaultSpec(rename_fail_rate=1.0))
        src = tmp_path / "src"
        src.write_bytes(b"x")
        with pytest.raises(OSError):
            fs.replace(src, tmp_path / "dst")
        assert src.exists()  # a failed rename leaves the source alone


class TestInstallation:
    def test_default_is_the_real_singleton(self):
        assert get_fs() is REAL_FS

    def test_context_scopes_and_restores(self):
        fake = ChaosFs(seed=1)
        with chaos_fs(fake) as installed:
            assert installed is fake
            assert get_fs() is fake
        assert get_fs() is REAL_FS

    def test_set_fs_returns_previous(self):
        fake = ChaosFs(seed=1)
        assert set_fs(fake) is REAL_FS
        assert set_fs(REAL_FS) is fake

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv(
            CHAOS_FS_ENV, "seed=9, enospc_after=3, torn_write_rate=0.25"
        )
        fs = _fs_from_env()
        assert isinstance(fs, ChaosFs)
        assert fs.seed == 9
        assert fs.spec.enospc_after == 3
        assert fs.spec.torn_write_rate == 0.25

    def test_env_empty_is_real(self, monkeypatch):
        monkeypatch.delenv(CHAOS_FS_ENV, raising=False)
        assert _fs_from_env() is REAL_FS

    def test_env_unknown_field_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(CHAOS_FS_ENV, "tornn_rate=0.5")
        with pytest.raises(ValueError, match="unknown field"):
            _fs_from_env()
