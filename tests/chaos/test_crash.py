"""Crash points: a closed registry, an env protocol, an exact exit."""

from __future__ import annotations

import pytest

from repro.chaos import (
    CRASH_EXIT,
    CRASH_POINT_ENV,
    CRASH_POINTS,
    arm,
    crash_point,
    disarm,
    rearm_from_env,
)
from repro.chaos import crash as crash_mod


@pytest.fixture
def exits(monkeypatch):
    """Capture would-be ``os._exit`` calls instead of dying."""
    calls: list[int] = []
    monkeypatch.setattr(crash_mod, "_exit", calls.append)
    return calls


class TestRegistry:
    def test_labels_are_unique_and_namespaced(self):
        assert len(set(CRASH_POINTS)) == len(CRASH_POINTS)
        assert all("." in label for label in CRASH_POINTS)

    def test_arming_unknown_label_fails_loudly(self):
        # the matrix must never silently test nothing
        with pytest.raises(ValueError, match="unknown crash point"):
            arm("cache.store.pre_renam")

    def test_hits_is_one_based(self):
        with pytest.raises(ValueError):
            arm(CRASH_POINTS[0], hits=0)


class TestFiring:
    def test_disarmed_is_a_no_op(self, exits):
        for label in CRASH_POINTS:
            crash_point(label)
        assert exits == []

    def test_armed_label_fires_with_the_distinctive_exit(self, exits, capfd):
        arm("cache.store.pre_rename")
        crash_point("cache.store.post_rename")  # different label: no fire
        assert exits == []
        crash_point("cache.store.pre_rename")
        assert exits == [CRASH_EXIT]
        assert "chaos: crash at cache.store.pre_rename" in capfd.readouterr().err

    def test_hits_counts_down(self, exits):
        arm("journal.save.pre_rename", hits=3)
        crash_point("journal.save.pre_rename")
        crash_point("journal.save.pre_rename")
        assert exits == []
        crash_point("journal.save.pre_rename")
        assert exits == [CRASH_EXIT]

    def test_disarm_clears_everything(self, exits):
        arm("fleet.shard.reduced")
        disarm()
        crash_point("fleet.shard.reduced")
        assert exits == []


class TestEnvProtocol:
    def test_rearm_from_env_parses_labels_and_hits(self, monkeypatch, exits):
        monkeypatch.setenv(
            CRASH_POINT_ENV, "sweep.point.post_persist, fleet.shard.reduced:2"
        )
        rearm_from_env()
        crash_point("fleet.shard.reduced")
        assert exits == []
        crash_point("sweep.point.post_persist")
        assert exits == [CRASH_EXIT]

    def test_rearm_from_empty_env_disarms(self, monkeypatch, exits):
        arm("cache.store.pre_rename")
        monkeypatch.delenv(CRASH_POINT_ENV, raising=False)
        rearm_from_env()
        crash_point("cache.store.pre_rename")
        assert exits == []

    def test_rearm_rejects_unknown_labels(self, monkeypatch):
        monkeypatch.setenv(CRASH_POINT_ENV, "not.a.label")
        with pytest.raises(ValueError):
            rearm_from_env()
        monkeypatch.delenv(CRASH_POINT_ENV)
        rearm_from_env()
