"""Chaos-test guardrails.

Crash and fault-injection tests spawn subprocesses and worker pools; a
regression shows up as a hang, not a failure.  Opt the directory into
the shared SIGALRM wall-clock clamp, and guarantee every test leaves
the process-global chaos state (fs layer, armed crash points) exactly
as it found it -- a leaked ChaosFs would poison the rest of the suite.
"""

from __future__ import annotations

import pytest

from repro.chaos import REAL_FS, disarm, get_fs, set_fs


@pytest.fixture(autouse=True)
def _clamped(wall_clock_clamp):
    """Apply the shared SIGALRM wall-clock clamp to every test here."""
    yield


@pytest.fixture(autouse=True)
def _pristine_chaos():
    """Restore the real fs and disarm every crash point after each test."""
    previous = get_fs()
    yield
    set_fs(previous if previous is REAL_FS else REAL_FS)
    disarm()
