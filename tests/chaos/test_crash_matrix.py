"""The crash matrix, end to end: kill at every label, resume identically.

The fast test keeps one full target (the journal -- no worker pool, a
handful of subprocess runs) in the tier-1 loop; the complete matrix over
the pool-spawning sweep and fleet targets is the ``slow``-marked
acceptance test the CI chaos step runs.
"""

from __future__ import annotations

import pytest

from repro.chaos import (
    CRASH_POINTS,
    MATRIX_TARGETS,
    MatrixReport,
    MatrixRow,
    run_crash_matrix,
    run_target,
)
from repro.chaos.driver import canonical


class TestRegistryCoverage:
    def test_every_crash_point_is_covered_by_some_target(self):
        """A label no target reaches is a hole in the durability claim."""
        covered = {label for labels in MATRIX_TARGETS.values() for label in labels}
        assert covered == set(CRASH_POINTS)

    def test_unknown_target_is_rejected(self):
        with pytest.raises(ValueError, match="unknown matrix target"):
            run_crash_matrix(["sweeep"])


class TestTargets:
    def test_targets_are_deterministic_in_process(self, tmp_path):
        """Each target's canonical output is identical across fresh and
        re-run state dirs -- the precondition for the stdout comparison
        the matrix rests on."""
        for name in sorted(MATRIX_TARGETS):
            fresh = canonical(run_target(name, tmp_path / name))
            rerun = canonical(run_target(name, tmp_path / name))
            other = canonical(run_target(name, tmp_path / f"{name}-b"))
            assert fresh == rerun == other, name


class TestMatrix:
    def test_journal_target_survives_every_label(self, tmp_path):
        """Fast cell for the tier-1 loop: the journal walks both
        ``journal.save.*`` labels with no worker pool involved."""
        report = run_crash_matrix(["journal"], base_dir=tmp_path)
        assert isinstance(report, MatrixReport)
        assert [row.label for row in report.rows] == list(MATRIX_TARGETS["journal"])
        for row in report.rows:
            assert row.ok, f"{row.target}/{row.label}: {row.detail}"

    @pytest.mark.slow
    def test_full_matrix_resumes_bit_identically(self, tmp_path):
        """The acceptance criterion: every (target, label) cell crashes
        at its point and resumes to byte-identical output."""
        rows_seen: list[MatrixRow] = []
        report = run_crash_matrix(base_dir=tmp_path, on_row=rows_seen.append)
        assert rows_seen == report.rows
        expected = sum(len(labels) for labels in MATRIX_TARGETS.values())
        assert len(report.rows) == expected
        failures = [r for r in report.rows if not r.ok]
        assert report.ok, "\n".join(
            f"{r.target}/{r.label}: {r.detail}" for r in failures
        )
