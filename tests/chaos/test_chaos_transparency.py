"""Chaos must be invisible when disabled -- the default, always.

Mirrors the obs transparency guard: the fs indirection and the crash
points are now threaded through every durable write in the repo, and
this file pins that with chaos off (no env vars, nothing armed) they
change *nothing*: the fs layer is the stateless real singleton, no
crash point is armed, cache records are byte-identical run to run, and
the healthy path emits not a single chaos/degradation obs event.
"""

from __future__ import annotations

from repro.chaos import REAL_FS, get_fs
from repro.chaos import crash as crash_mod
from repro.obs import observed
from repro.runner import ResultCache, Sweep, run_sweep
from repro.chaos.driver import matrix_point


class TestDisabledState:
    def test_fs_layer_is_the_real_stateless_singleton(self):
        assert get_fs() is REAL_FS
        assert not hasattr(REAL_FS, "__dict__")  # slots: no per-call state

    def test_no_crash_point_is_armed(self):
        assert crash_mod._armed == {}


class TestBitIdentical:
    def test_cache_records_byte_identical_across_runs(self, tmp_path):
        """Same store through the chaos-threaded write path twice: the
        on-disk framed records are byte-for-byte identical."""
        payload = {"value": {"x": [1, 2.5, "s"]}, "wall": 0.125}
        blobs = []
        for name in ("a", "b"):
            cache = ResultCache(tmp_path / name)
            cache.store("k", payload["value"], payload["wall"])
            blobs.append((tmp_path / name / "k.pkl").read_bytes())
        assert blobs[0] == blobs[1]

    def test_sweep_identical_with_chaos_hooks_in_path(self, tmp_path):
        grid = tuple({"i": i} for i in range(4))
        results = []
        for name in ("a", "b"):
            sweep = Sweep(name="transparency", fn=matrix_point, grid=grid,
                          base_seed=3)
            outcome = run_sweep(sweep, jobs=1, cache_dir=tmp_path / name)
            results.append([p.value for p in outcome.points])
        assert results[0] == results[1]

    def test_healthy_path_emits_no_degradation_events(self, tmp_path):
        """Quarantine/passthrough counters fire only on damage; a clean
        store-and-load run must not touch them (golden obs traces
        elsewhere depend on that silence)."""
        with observed() as obs:
            cache = ResultCache(tmp_path)
            cache.store("k", {"v": 1}, 0.01)
            assert cache.load("k").value == {"v": 1}
        counters = obs.registry.snapshot()["counters"]
        assert not any(
            key.startswith(("cache.", "journal.")) for key in counters
        ), counters

    def test_storage_report_is_all_quiet(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("k", 1, 0.0)
        cache.load("k")
        report = cache.storage_report()
        assert report == {
            "durability": "rename",
            "passthrough": False,
            "stores_dropped": 0,
            "store_errors": 0,
            "corrupt_quarantined": 0,
            "invalid_payloads": 0,
        }
        assert cache.degraded is False
