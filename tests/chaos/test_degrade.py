"""Degrade-don't-die: ENOSPC, EIO, and torn writes under injection.

The acceptance story: a fleet whose disk fills mid-run *completes* in
read-through passthrough with the degradation visible in its storage
report and obs counters; a gateway journal that cannot persist keeps
serving from memory and sheds via health; corrupt records quarantine
exactly once.
"""

from __future__ import annotations

import pytest

from repro.chaos import REAL_FS, ChaosFs, FaultSpec, chaos_fs
from repro.obs import observed
from repro.runner import ResultCache
from repro.serve.health import HealthMonitor, HealthThresholds
from repro.serve.jobs import JobRecord, JobSpec, JobStore


def _spec(seed=0):
    return JobSpec(
        client="chaos-test",
        kind="sweep",
        params={"fn": "lifetime", "grid": [{"i": seed}], "base_seed": seed},
    )


class TestCacheDegradation:
    def test_enospc_latches_passthrough_hits_still_served(self, tmp_path):
        warm = ResultCache(tmp_path)
        warm.store("hot", {"answer": 42}, 0.5)

        cache = ResultCache(tmp_path, fs=ChaosFs(seed=0, spec=FaultSpec(enospc_after=0)))
        cache.store("cold", {"answer": 43}, 0.5)  # absorbed, not raised
        assert cache.passthrough is True
        assert cache.stores_dropped == 1
        assert cache.load("hot").value == {"answer": 42}  # hits survive
        assert cache.load("cold") is None
        cache.store("cold", {"answer": 43}, 0.5)  # passthrough short-circuit
        assert cache.stores_dropped == 2
        report = cache.storage_report()
        assert report["passthrough"] is True
        assert cache.degraded is True

    def test_eio_drops_one_store_without_latching(self, tmp_path):
        cache = ResultCache(tmp_path, fs=ChaosFs(seed=0, spec=FaultSpec(eio_rate=1.0)))
        cache.store("k", 1, 0.0)
        assert cache.passthrough is False  # EIO is per-store, not terminal
        assert cache.store_errors == 1
        assert cache.stores_dropped == 1

    def test_torn_write_detected_never_misloaded(self, tmp_path):
        """durability=none + a 100% torn-write fs: every record on disk
        is a silent prefix; the CRC turns each into a quarantined miss."""
        cache = ResultCache(
            tmp_path, durability="none",
            fs=ChaosFs(seed=0, spec=FaultSpec(torn_write_rate=1.0)),
        )
        cache.store("k", {"big": list(range(200))}, 0.5)
        assert cache.load("k") is None
        assert cache.corrupt_quarantined == 1
        assert (tmp_path / "corrupt" / "k.pkl").exists()

    def test_store_counters_surface_in_obs(self, tmp_path):
        with observed() as obs:
            cache = ResultCache(
                tmp_path, fs=ChaosFs(seed=0, spec=FaultSpec(enospc_after=0))
            )
            cache.store("k", 1, 0.0)
        counters = obs.registry.snapshot()["counters"]
        assert counters["cache.enospc_passthrough"] == 1
        assert counters["cache.stores_dropped"] == 1


class TestFleetUnderEnospc:
    def test_fleet_completes_in_passthrough(self, tmp_path):
        """The headline acceptance: disk fills, the fleet still answers,
        and the degradation is visible in the summary and obs."""
        from repro.fleet import FleetPlan, run_fleet

        plan = FleetPlan(
            n_devices=20, days=20, capacity_gb=64.0, seed=3,
            shard_size=5, chunk=5,
        )
        with observed() as obs:
            with chaos_fs(ChaosFs(seed=0, spec=FaultSpec(enospc_after=0))):
                fleet = run_fleet(plan, jobs=1, cache_dir=tmp_path / "cache")
        summary = fleet.summary()
        assert summary["complete"] is True
        assert summary["devices"] == 20
        assert summary["storage"]["passthrough"] is True
        assert summary["storage"]["stores_dropped"] == summary["shards"]
        counters = obs.registry.snapshot()["counters"]
        assert counters["cache.enospc_passthrough"] == 1
        assert counters["cache.stores_dropped"] == summary["shards"]


class TestJournalDegradation:
    def test_failed_save_absorbed_and_latched(self, tmp_path):
        store = JobStore(
            tmp_path, fs=ChaosFs(seed=0, spec=FaultSpec(enospc_after=0))
        )
        record = JobRecord.fresh(_spec())
        assert store.save(record) is False  # absorbed, not raised
        assert store.degraded is True
        assert store.save_failures == 1
        assert store.load(record.job_id) is None  # memory, not disk, has it

    def test_successful_save_clears_the_latch(self, tmp_path):
        store = JobStore(tmp_path, fs=ChaosFs(seed=0, spec=FaultSpec(enospc_after=0)))
        record = JobRecord.fresh(_spec())
        store.save(record)
        assert store.degraded is True
        store.fs = REAL_FS
        assert store.save(record) is True
        assert store.degraded is False  # recovery is observed, not assumed
        assert store.load(record.job_id).job_id == record.job_id

    def test_corrupt_entry_quarantined_once_across_restarts(self, tmp_path):
        """The restart-recount bug: a corrupt journal entry must be
        counted at its first detection and never again."""
        first = JobStore(tmp_path)
        good = JobRecord.fresh(_spec())
        first.save(good)
        (tmp_path / "jdeadbeefdeadbeef.json").write_text("{torn")
        assert [r.job_id for r in first.load_all()] == [good.job_id]
        assert first.corrupt_skipped == 1
        assert (tmp_path / "corrupt" / "jdeadbeefdeadbeef.json").exists()

        second = JobStore(tmp_path)  # the restart
        assert [r.job_id for r in second.load_all()] == [good.job_id]
        assert second.corrupt_skipped == 0  # quarantined, not re-counted


class TestHealthShedding:
    def test_cache_passthrough_sheds_and_recovers(self):
        health = HealthMonitor()
        assert health.healthy is True
        health.storage_from_job({"passthrough": True, "stores_dropped": 4})
        assert health.healthy is False
        assert any("ENOSPC" in r for r in health.unhealthy_reasons())
        health.storage_from_job({"passthrough": False, "stores_dropped": 0})
        assert health.healthy is True  # a later clean job clears the latch

    def test_journal_degradation_sheds(self, tmp_path):
        health = HealthMonitor()
        store = JobStore(tmp_path, fs=ChaosFs(seed=0, spec=FaultSpec(enospc_after=0)))
        store.save(JobRecord.fresh(_spec()))
        health.sync_journal(store)
        assert health.healthy is False
        assert any("journal" in r for r in health.unhealthy_reasons())
        report = health.report()
        assert report["storage"]["journal_degraded"] is True
        assert report["storage"]["journal_save_failures"] == 1

    def test_storage_shedding_can_be_disabled(self):
        health = HealthMonitor(HealthThresholds(shed_on_storage_degraded=False))
        health.storage_from_job({"passthrough": True})
        assert health.healthy is True
        assert health.unhealthy_reasons() == []

    def test_counters_accumulate_past_recovery(self):
        health = HealthMonitor()
        health.storage_from_job({"passthrough": True, "stores_dropped": 3})
        health.storage_from_job({"passthrough": False, "corrupt_quarantined": 2})
        counters = health.registry.snapshot()["counters"]
        assert counters["serve.cache_stores_dropped"] == 3
        assert counters["serve.cache_corrupt_quarantined"] == 2
