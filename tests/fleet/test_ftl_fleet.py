"""FTL-fidelity fleets: the page-level replay behind the fleet engine.

``FleetPlan(fidelity="ftl")`` swaps the epoch lifetime model for the
page-mapped FTL replay inside every shard.  The fleet contracts must
survive the swap unchanged: bit-identical wear for any shard/chunk/jobs
geometry, per-device identity equal to a direct replay, epoch cache
keys untouched by the new field, and misuse rejected up front.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import FleetPlan, run_fleet
from repro.ftl.replay import FtlReplayConfig, replay
from repro.runner.points import assign_mixes

N_DEVICES = 10
DAYS = 30


def _plan(**overrides) -> FleetPlan:
    defaults = dict(
        n_devices=N_DEVICES, days=DAYS, capacity_gb=64.0, seed=606,
        shard_size=5, chunk=5, fidelity="ftl",
    )
    defaults.update(overrides)
    return FleetPlan(**defaults)


@pytest.fixture(scope="module")
def golden_wear():
    fleet = run_fleet(_plan(shard_size=N_DEVICES, chunk=N_DEVICES))
    return np.asarray(fleet.wear_values())


class TestGeometryInvariance:
    @pytest.mark.parametrize(
        ("shard_size", "chunk"),
        [(5, 5), (3, 2), (N_DEVICES, 3), (1, 1)],
        ids=["aligned", "ragged", "one-shard", "device-per-shard"],
    )
    def test_bit_identical_across_geometries(self, golden_wear, shard_size,
                                             chunk):
        fleet = run_fleet(_plan(shard_size=shard_size, chunk=chunk))
        assert np.array_equal(np.asarray(fleet.wear_values()), golden_wear)

    def test_serial_equals_parallel(self, golden_wear):
        fleet = run_fleet(_plan(shard_size=3, chunk=3), jobs=2)
        assert np.array_equal(np.asarray(fleet.wear_values()), golden_wear)


def test_devices_are_direct_ftl_replays(golden_wear):
    """Fleet device u == replay(mix(u), workload_seed_base + u)."""
    plan = _plan()
    mixes = assign_mixes(plan.seed, dict(plan.mix_weights), 0, N_DEVICES)
    for u in (0, 4, 9):
        direct = replay(
            FtlReplayConfig(mix=mixes[u], days=DAYS, capacity_gb=64.0,
                            seed=plan.workload_seed_base + u)
        )
        assert golden_wear[u] == direct.mean_wear


def test_ftl_fidelity_changes_the_answer():
    """The bridge must actually switch models, not silently fall back."""
    ftl_fleet = run_fleet(_plan())
    epoch_fleet = run_fleet(_plan(fidelity="epoch"))
    assert not np.array_equal(
        np.asarray(ftl_fleet.wear_values()),
        np.asarray(epoch_fleet.wear_values()),
    )


class TestPlanField:
    def test_epoch_shard_params_carry_no_fidelity_key(self):
        """Cache-key safety: default-fidelity grids are byte-identical
        to pre-bridge grids, so existing shard caches stay warm."""
        for params in FleetPlan(n_devices=4, days=10).shard_grid():
            assert "fidelity" not in params

    def test_ftl_shard_params_carry_the_key(self):
        for params in _plan().shard_grid():
            assert params["fidelity"] == "ftl"

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            FleetPlan(n_devices=4, days=10, fidelity="quantum")

    def test_faults_are_epoch_only(self):
        with pytest.raises(ValueError, match="epoch"):
            FleetPlan(n_devices=4, days=10, fidelity="ftl",
                      faults={"flaky": 0.5})
