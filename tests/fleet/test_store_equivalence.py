"""Off-store fleet queries == in-memory reduction, exactly.

The point of the column store: once a fleet has run, its percentile /
distribution questions are answered from the block index -- no shard
pickles rehydrated, nothing recomputed -- and the answers are *the
same floats* the in-memory reduction produced.  Pinned here for exact
and histogram fleets, across shard/chunk geometries and worker counts.

(``mean``/``total`` are deliberately not compared: the in-memory digest
accumulates its running total in shard *completion* order, so its last
bits are scheduling-dependent.  Everything compared here is
completion-order-invariant.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import (
    FleetPlan,
    fleet_shard_point,
    fleet_store_keys,
    fleet_wear_from_store,
    run_fleet,
)
from repro.runner.cache import ResultCache
from repro.store import ColumnStore

N_DEVICES = 30
DAYS = 60


def _plan(**overrides) -> FleetPlan:
    defaults = dict(
        n_devices=N_DEVICES, days=DAYS, capacity_gb=64.0, seed=313,
        shard_size=10, chunk=10,
    )
    defaults.update(overrides)
    return FleetPlan(**defaults)


QS = (0.5, 0.9, 0.99)


class TestWearEquivalence:
    @pytest.mark.parametrize(
        ("shard_size", "chunk", "jobs"),
        [(10, 10, 1), (7, 7, 1), (17, 5, 1), (10, 10, 2)],
        ids=["aligned", "ragged", "mixed", "parallel"],
    )
    def test_exact_fleet_matches_bit_for_bit(self, tmp_path, shard_size, chunk, jobs):
        plan = _plan(shard_size=shard_size, chunk=chunk)
        fleet = run_fleet(plan, jobs=jobs, cache_dir=tmp_path)
        off_disk = fleet_wear_from_store(plan, tmp_path)
        # the exact vector is identical floats in identical (device) order
        assert off_disk.exact == fleet.wear_values()
        assert off_disk.count == fleet.wear.count == N_DEVICES
        assert off_disk.counts == fleet.wear.counts
        assert off_disk.min == fleet.wear.min
        assert off_disk.max == fleet.wear.max
        for q in QS:
            assert off_disk.quantile(q) == fleet.wear.quantile(q)
        assert off_disk.worn_out_fraction() == fleet.wear.worn_out_fraction()

    def test_histogram_fleet_matches_lane_for_lane(self, tmp_path):
        plan = _plan(shard_size=7, chunk=4, exact_cap=0)
        fleet = run_fleet(plan, cache_dir=tmp_path)
        off_disk = fleet_wear_from_store(plan, tmp_path)
        assert not plan.exact and off_disk.exact is None
        assert off_disk.counts == fleet.wear.counts
        assert off_disk.min == fleet.wear.min
        assert off_disk.max == fleet.wear.max
        for q in QS:
            assert off_disk.quantile(q) == fleet.wear.quantile(q)

    def test_store_query_needs_no_recompute_and_no_pickles(self, tmp_path):
        """The query path touches only ``columns.rcs``: deleting every
        shard pickle (and making recompute impossible) changes nothing."""
        plan = _plan()
        fleet = run_fleet(plan, cache_dir=tmp_path)
        for pkl in tmp_path.glob("*.pkl"):
            pkl.unlink()
        off_disk = fleet_wear_from_store(plan, tmp_path)
        assert off_disk.exact == fleet.wear_values()

    def test_other_observable_columns_are_queryable(self, tmp_path):
        """Any shard observable -- not just wear -- concatenates off the
        store in device order, equal to a flat single-shard compute."""
        plan = _plan()
        run_fleet(plan, cache_dir=tmp_path)
        flat = fleet_shard_point(
            _plan(shard_size=N_DEVICES, chunk=N_DEVICES).shard_grid()[0], 0
        )
        store = ColumnStore(tmp_path / ResultCache.STORE_FILE, mode="read")
        for column in ("spare_wear", "capacity_gb", "retired_groups"):
            parts = [
                store.get(key, columns=[f"obs.{column}"])[f"obs.{column}"]
                for key in fleet_store_keys(plan)
            ]
            got = np.concatenate(parts)
            assert got.tobytes() == flat["obs"][column].tobytes(), column


class TestMissingShards:
    def test_unfinished_fleet_raises_not_partial(self, tmp_path):
        plan = _plan()
        run_fleet(plan, cache_dir=tmp_path)
        # drop one shard from the store by superseding nothing: rewrite
        # the store without the last shard's key
        path = tmp_path / ResultCache.STORE_FILE
        store = ColumnStore(path, mode="append")
        victim = fleet_store_keys(plan)[-1]
        live = {k: store.get(k) for k in store.keys() if k != victim}
        path.unlink()
        rebuilt = ColumnStore(path)
        for key, arrays in live.items():
            rebuilt.put(key, arrays)
        rebuilt.close()
        with pytest.raises(KeyError):
            fleet_wear_from_store(plan, tmp_path)

    def test_no_store_at_all_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            fleet_wear_from_store(_plan(), tmp_path)


class TestStoreKeys:
    def test_keys_match_what_run_fleet_persisted(self, tmp_path):
        plan = _plan(shard_size=7)
        run_fleet(plan, cache_dir=tmp_path)
        store = ColumnStore(tmp_path / ResultCache.STORE_FILE, mode="read")
        assert sorted(fleet_store_keys(plan)) == store.keys()

    def test_keys_are_name_scoped(self):
        plan = _plan()
        assert fleet_store_keys(plan, name="a") != fleet_store_keys(plan, name="b")
