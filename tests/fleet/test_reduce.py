"""WearDigest: the mergeable reducer the fleet layer's claims rest on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import WEAR_BIN_WIDTH, WearDigest


def _digest(values, keep_exact=False):
    d = WearDigest(keep_exact=keep_exact)
    d.add_many(values)
    return d


class TestMergeAlgebra:
    def test_associative(self):
        rng = np.random.default_rng(1)
        a, b, c = (_digest(rng.random(n) * 1.8, keep_exact=True)
                   for n in (13, 29, 7))
        left = a.merged_with(b).merged_with(c)
        right = a.merged_with(b.merged_with(c))
        assert left.counts == right.counts
        assert left.count == right.count
        assert left.total == right.total
        assert left.min == right.min and left.max == right.max
        assert sorted(left.exact) == sorted(right.exact)

    def test_commutative_stats(self):
        rng = np.random.default_rng(2)
        a, b = _digest(rng.random(20)), _digest(rng.random(31))
        ab, ba = a.merged_with(b), b.merged_with(a)
        assert ab.counts == ba.counts
        assert ab.count == ba.count
        assert ab.min == ba.min and ab.max == ba.max

    def test_empty_is_identity(self):
        d = _digest([0.1, 0.5, 1.2], keep_exact=True)
        merged = d.merged_with(WearDigest(keep_exact=True))
        assert merged.counts == d.counts
        assert merged.exact == d.exact
        assert merged.min == d.min and merged.max == d.max

    def test_merge_in_leaves_other_untouched(self):
        a, b = _digest([0.1]), _digest([0.2])
        before = (list(b.counts), b.count, b.total)
        a.merge_in(b)
        assert (list(b.counts), b.count, b.total) == before


class TestExactFallback:
    def test_exact_plus_exact_stays_exact(self):
        merged = _digest([0.1], keep_exact=True).merged_with(
            _digest([0.2], keep_exact=True)
        )
        assert sorted(merged.exact) == [0.1, 0.2]

    def test_exact_plus_histogram_drops_exactness(self):
        exact = _digest([0.1], keep_exact=True)
        hist = _digest([0.2], keep_exact=False)
        assert exact.merged_with(hist).exact is None
        assert hist.merged_with(exact).exact is None

    def test_exact_quantile_matches_numpy_bitwise(self):
        values = np.random.default_rng(3).random(257) * 1.5
        d = _digest(values, keep_exact=True)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert d.quantile(q) == float(np.quantile(values, q))

    def test_exact_worn_out_fraction(self):
        d = _digest([0.5, 0.9999, 1.0, 1.3], keep_exact=True)
        assert d.worn_out_fraction() == 0.5
        assert d.worn_out_fraction(threshold=0.9) == 0.75


class TestHistogramEstimates:
    def test_quantiles_within_one_bin_width(self):
        values = np.random.default_rng(4).gamma(2.0, 0.05, size=5000)
        d = _digest(values)
        for q in (0.1, 0.5, 0.9, 0.99):
            exact = float(np.quantile(values, q))
            assert abs(d.quantile(q) - exact) <= WEAR_BIN_WIDTH, q

    def test_quantile_clamped_to_observed_range(self):
        d = _digest([0.0101, 0.0102])
        assert d.min <= d.quantile(0.0) <= d.quantile(1.0) <= d.max

    def test_worn_out_fraction_exact_on_bin_edge(self):
        # 1.0 is a bin edge, so the histogram path is exact there
        values = [0.2, 0.999, 1.0, 1.5, 2.5]
        assert _digest(values).worn_out_fraction() == \
            _digest(values, keep_exact=True).worn_out_fraction()

    def test_overflow_bin(self):
        d = _digest([5.0, 7.0])
        assert d.count == 2
        assert d.quantile(0.9) == d.max == 7.0

    def test_mean_and_count(self):
        d = _digest([0.1, 0.2, 0.3])
        assert d.count == 3
        assert d.mean() == pytest.approx(0.2)


class TestSerialization:
    def test_roundtrip(self):
        d = _digest(np.random.default_rng(5).random(100) * 2.2,
                    keep_exact=True)
        rt = WearDigest.from_dict(d.to_dict())
        assert rt.counts == d.counts
        assert rt.count == d.count and rt.total == d.total
        assert rt.min == d.min and rt.max == d.max
        assert rt.exact == d.exact

    def test_roundtrip_histogram_only(self):
        d = _digest([0.1, 0.9])
        rt = WearDigest.from_dict(d.to_dict())
        assert rt.exact is None
        assert rt.counts == d.counts

    def test_roundtrip_is_json_safe(self):
        import json

        payload = json.loads(json.dumps(_digest([0.1, 1.7]).to_dict()))
        assert WearDigest.from_dict(payload).counts == _digest([0.1, 1.7]).counts

    def test_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="schema"):
            WearDigest.from_dict({"schema": "something/else"})


class TestValidation:
    def test_rejects_bad_values(self):
        d = WearDigest()
        for bad in (float("nan"), float("inf"), -0.1):
            with pytest.raises(ValueError):
                d.add(bad)

    def test_empty_digest_has_no_stats(self):
        d = WearDigest()
        with pytest.raises(ValueError):
            d.quantile(0.5)
        with pytest.raises(ValueError):
            d.mean()
        with pytest.raises(ValueError):
            d.worn_out_fraction()

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            _digest([0.1]).quantile(1.5)
