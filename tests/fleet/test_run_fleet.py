"""run_fleet: sharding composes the batch engine with the sweep runner.

The load-bearing claims, each pinned here on a small fast fleet:

* shard/chunk geometry never changes any device's result (bit-identical
  wear vectors across shardings, equal to one flat batch);
* crash-resume rides the sweep cache per shard;
* reduction is streaming (shard values dropped after folding);
* serial and parallel fleets agree exactly, obs rollups included.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import FleetPlan, fleet_shard_point, run_fleet
from repro.obs import strip_timings

N_DEVICES = 30
DAYS = 90


def _plan(**overrides) -> FleetPlan:
    defaults = dict(
        n_devices=N_DEVICES, days=DAYS, capacity_gb=64.0, seed=606,
        shard_size=10, chunk=10,
    )
    defaults.update(overrides)
    return FleetPlan(**defaults)


@pytest.fixture(scope="module")
def golden_wear():
    """The whole population as ONE shard and ONE chunk: no boundaries."""
    fleet = run_fleet(_plan(shard_size=N_DEVICES, chunk=N_DEVICES))
    return np.asarray(fleet.wear_values())


class TestShardInvariance:
    @pytest.mark.parametrize(
        ("shard_size", "chunk"),
        [(10, 10), (7, 7), (17, 5), (N_DEVICES, 4), (1, 1)],
        ids=["aligned", "ragged", "mixed", "one-shard", "device-per-shard"],
    )
    def test_bit_identical_across_geometries(self, golden_wear, shard_size, chunk):
        fleet = run_fleet(_plan(shard_size=shard_size, chunk=chunk))
        assert np.array_equal(np.asarray(fleet.wear_values()), golden_wear)

    def test_histogram_lanes_invariant_too(self, golden_wear):
        a = run_fleet(_plan(shard_size=7, chunk=3, exact_cap=0))
        b = run_fleet(_plan(shard_size=13, chunk=13, exact_cap=0))
        assert a.wear.counts == b.wear.counts
        assert a.wear.count == b.wear.count == N_DEVICES
        assert a.wear.min == b.wear.min and a.wear.max == b.wear.max
        assert a.wear.min == golden_wear.min()

    def test_quantiles_match_flat_population(self, golden_wear):
        fleet = run_fleet(_plan())
        for q in (0.5, 0.9, 0.99):
            assert fleet.wear.quantile(q) == float(np.quantile(golden_wear, q))


class TestCrashResume:
    def test_second_run_is_all_cache_hits_and_identical(self, tmp_path, golden_wear):
        plan = _plan(shard_size=7, chunk=7)
        first = run_fleet(plan, cache_dir=tmp_path)
        second = run_fleet(plan, cache_dir=tmp_path)
        assert first.sweep.computed_count == plan.n_shards
        assert second.sweep.cached_count == plan.n_shards
        assert second.sweep.computed_count == 0
        assert np.array_equal(np.asarray(second.wear_values()), golden_wear)

    def test_partial_cache_resumes_missing_shards_only(self, tmp_path, golden_wear):
        plan = _plan(shard_size=10, chunk=10)
        # warm exactly one shard by running a single-shard slice of the
        # same geometry through the same sweep name
        from repro.fleet.run import _FLEET_VERSION_TAG
        from repro.runner import Sweep, run_sweep

        grid = plan.shard_grid()
        warm = Sweep(name="fleet", fn=fleet_shard_point, grid=grid,
                     base_seed=plan.seed, version_tag=_FLEET_VERSION_TAG)
        # run the full sweep once to warm, then delete one entry
        run_sweep(warm, cache_dir=tmp_path)
        removed = 0
        for entry in list(tmp_path.glob("*.pkl"))[:1]:
            entry.unlink()
            removed += 1
        assert removed == 1
        resumed = run_fleet(plan, cache_dir=tmp_path)
        assert resumed.sweep.cached_count == plan.n_shards - 1
        assert resumed.sweep.computed_count == 1
        assert np.array_equal(np.asarray(resumed.wear_values()), golden_wear)


class TestStreamingReduction:
    def test_shard_values_are_dropped(self):
        fleet = run_fleet(_plan())
        assert all(p.value is None for p in fleet.sweep.points)

    def test_devices_accounted(self):
        fleet = run_fleet(_plan(shard_size=7))
        assert fleet.devices == N_DEVICES
        assert fleet.ok
        assert fleet.summary()["shards"] == fleet.plan.n_shards == 5


class TestParallelParity:
    def test_serial_equals_parallel(self, golden_wear):
        plan = _plan(shard_size=7, chunk=4)
        serial = run_fleet(plan, jobs=1)
        parallel = run_fleet(plan, jobs=2)
        assert np.array_equal(
            np.asarray(serial.wear_values()), np.asarray(parallel.wear_values())
        )
        assert serial.wear.counts == parallel.wear.counts
        assert np.array_equal(np.asarray(serial.wear_values()), golden_wear)

    def test_obs_rollup_deterministic(self):
        plan = _plan(shard_size=10)
        serial = run_fleet(plan, jobs=1, collect_obs=True)
        parallel = run_fleet(plan, jobs=2, collect_obs=True)
        assert serial.obs_metrics is not None
        assert strip_timings(serial.obs_metrics) == strip_timings(parallel.obs_metrics)
        # the engine really ran under the observer in every worker
        assert serial.obs_metrics["counters"]["engine.days"] == N_DEVICES * DAYS


class TestExactnessPolicy:
    def test_large_fleet_reduces_to_histogram(self):
        fleet = run_fleet(_plan(exact_cap=N_DEVICES - 1))
        assert not fleet.wear.is_exact
        assert fleet.wear_values() is None
        assert fleet.wear.count == N_DEVICES

    def test_exactness_decided_by_plan_not_completion(self):
        assert _plan().exact
        assert not _plan(exact_cap=0).exact


class TestShardPoint:
    def test_exact_shard_preserves_device_order(self, golden_wear):
        params = _plan(shard_size=N_DEVICES, chunk=9).shard_grid()[0]
        out = fleet_shard_point(params, 0)
        from repro.fleet import WearDigest

        digest = WearDigest.from_dict(out["wear"])
        assert out["devices"] == N_DEVICES
        # v2 contract: the digest is histogram-only; exact per-device
        # wear (device order) rides the shard's observable columns
        assert digest.exact is None
        assert digest.count == N_DEVICES
        assert np.array_equal(out["obs"]["wear"], golden_wear)
        assert out["obs"]["wear"].dtype == np.float64
        assert set(out["obs"]) >= {"wear", "spare_wear", "capacity_gb",
                                   "retired_groups", "resuscitated_groups"}

    def test_faults_ride_the_shard(self):
        plan = _plan(
            shard_size=N_DEVICES, chunk=N_DEVICES,
            faults={"block_infant_mortality": 0.05, "transient_read_rate": 0.2,
                    "power_loss_rate": 0.05, "cloud_outage_rate": 0.02},
        )
        faulted = run_fleet(plan)
        clean = run_fleet(_plan(shard_size=N_DEVICES, chunk=N_DEVICES))
        assert faulted.wear_values() != clean.wear_values()


class TestFailurePaths:
    """Partial fleets are flagged loudly, never silently under-counted."""

    def test_shard_timeout_keep_going_yields_flagged_partial(self, monkeypatch):
        """One shard hangs past the per-shard timeout: the run finishes
        with keep_going, and every surface of the result says a shard
        is missing -- ``complete`` False, devices under-counted by
        exactly one shard, and no exact wear vector on offer."""
        monkeypatch.setattr("repro.fleet.run.fleet_shard_point", _stall_middle_shard)
        fleet = run_fleet(
            _plan(), jobs=2, timeout_s=2.0, retries=0, keep_going=True
        )
        assert not fleet.ok
        assert fleet.devices == N_DEVICES - 10
        assert fleet.missing_devices == 10
        assert fleet.wear_values() is None  # partial vector never offered
        summary = fleet.summary()
        assert summary["complete"] is False
        assert summary["failed_shards"] == 1
        assert summary["missing_devices"] == 10
        assert summary["requested_devices"] == N_DEVICES
        # the statistics that *are* reported describe the completed 20
        assert summary["devices"] == 20
        assert summary["median"] is not None
        [error] = fleet.sweep.errors
        assert error.kind == "timeout"
        assert error.params["start"] == 10

    def test_every_shard_failing_keeps_summary_well_defined(self, monkeypatch):
        """An all-failed fleet reports None statistics, not a crash."""
        monkeypatch.setattr("repro.fleet.run.fleet_shard_point", _stall_always)
        fleet = run_fleet(
            _plan(), jobs=2, timeout_s=0.3, retries=0, keep_going=True
        )
        assert not fleet.ok
        assert fleet.devices == 0
        assert fleet.missing_devices == N_DEVICES
        summary = fleet.summary()
        assert summary["complete"] is False
        assert summary["failed_shards"] == fleet.plan.n_shards
        assert summary["median"] is None and summary["mean"] is None
        assert summary["worn_out_fraction"] is None

    def test_should_stop_cancels_the_fleet(self):
        from repro.runner import SweepCancelled

        with pytest.raises(SweepCancelled):
            run_fleet(_plan(), jobs=2, should_stop=lambda: True)

    def test_on_shard_progress_is_monotonic_and_complete(self):
        seen: list[tuple[int, int, int]] = []
        run_fleet(_plan(), on_shard=lambda *a: seen.append(a))
        assert [done for done, _, _ in seen] == [1, 2, 3]
        assert all(total == 3 for _, total, _ in seen)
        devices = [d for _, _, d in seen]
        assert devices == sorted(devices) and devices[-1] == N_DEVICES


def _stall_middle_shard(params: dict, seed: int) -> dict:
    """Module-level (worker-picklable) shard fn: hangs shard start=10."""
    if params["start"] == 10:
        import time

        time.sleep(30)
    return fleet_shard_point(params, seed)


def _stall_always(params: dict, seed: int) -> dict:
    import time

    time.sleep(30)
    return fleet_shard_point(params, seed)


class TestPlanValidation:
    def test_grid_covers_population_exactly(self):
        grid = _plan(shard_size=7).shard_grid()
        assert [p["start"] for p in grid] == [0, 7, 14, 21, 28]
        assert sum(p["count"] for p in grid) == N_DEVICES
        assert grid[-1]["count"] == 2

    def test_mix_weights_order_preserved(self):
        plan = _plan(mix_weights=[("b", 0.5), ("a", 0.5)])
        assert plan.mix_weights == (("b", 0.5), ("a", 0.5))
        assert plan.shard_grid()[0]["mix_weights"] == [["b", 0.5], ["a", 0.5]]

    def test_rejects_bad_geometry(self):
        for bad in (
            dict(n_devices=0), dict(days=0), dict(shard_size=0),
            dict(chunk=0), dict(capacity_gb=0.0), dict(exact_cap=-1),
        ):
            with pytest.raises(ValueError):
                _plan(**bad)

    def test_faults_canonicalized(self):
        plan = _plan(faults={"b": 1.0, "a": 2.0})
        assert plan.faults == (("a", 2.0), ("b", 1.0))
        assert plan.shard_grid()[0]["faults"] == {"a": 2.0, "b": 1.0}
