"""Vectorized GC victim selection vs the scalar oracle.

``select_victim`` (the per-candidate scalar scan) is the pinned
semantics; ``select_victim_arrays`` must pick the *identical* victim --
including lowest-block-index tie-breaking -- for any candidate state
and either policy.  Observer interaction is pinned to one span and one
count per invocation, and to zero registry traffic when disarmed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash.cell import CellTechnology
from repro.flash.chip import FlashChip
from repro.flash.geometry import Geometry
from repro.ftl.gc import GcPolicy, select_victim, select_victim_arrays
from repro.ftl.mapping import PageMap
from repro.ftl.replay import FtlReplayConfig, replay
from repro.obs import observed

GEOM = Geometry(page_size_bytes=512, pages_per_block=8, blocks_per_plane=16,
                planes_per_die=1, dies=1)


def _random_state(seed: int) -> tuple[FlashChip, PageMap, float]:
    """A chip + page map with randomized wear, age, and valid counts.

    State is built through the real program/trim path (not array pokes)
    so the per-page metadata the scalar scorer reads stays consistent
    with the shared arrays the vectorized scorer gathers from.
    """
    rng = np.random.default_rng(seed)
    chip = FlashChip(GEOM, CellTechnology.TLC, seed=seed)
    page_map = PageMap(GEOM.total_blocks, GEOM.pages_per_block)
    chip.arrays.pec[:] = rng.integers(0, 4000, GEOM.total_blocks)
    write_times = rng.uniform(0.0, 2.0, GEOM.total_blocks)
    pages_per = rng.integers(0, GEOM.pages_per_block + 1, GEOM.total_blocks)
    lpn = 0
    for block in np.argsort(write_times).tolist():  # advance_time is monotonic
        if pages_per[block] == 0:
            continue
        chip.advance_time(float(write_times[block]))
        for page in range(int(pages_per[block])):
            chip.blocks[block].program_analytic(page)
            page_map.record_write(lpn, (block, page))
            lpn += 1
    now = 2.5
    chip.advance_time(now)
    # vary valid counts independently of fill levels
    for dead in rng.choice(lpn, lpn // 3, replace=False) if lpn else []:
        page_map.invalidate(int(dead))
    for block in rng.choice(GEOM.total_blocks, 2, replace=False):
        chip.retire_block(int(block))
    return chip, page_map, now


@pytest.mark.parametrize("policy", list(GcPolicy))
@pytest.mark.parametrize("seed", range(8))
def test_vectorized_victim_matches_scalar_oracle(policy, seed):
    chip, page_map, now = _random_state(seed)
    candidates = [(i, chip.blocks[i]) for i in range(GEOM.total_blocks)]
    scalar = select_victim(candidates, page_map, policy, now)
    vectorized = select_victim_arrays(
        np.arange(GEOM.total_blocks), page_map, policy, now, chip.arrays
    )
    assert scalar == vectorized


@pytest.mark.parametrize("policy", list(GcPolicy))
def test_ties_break_to_lowest_block_index(policy):
    """Identical scores must pick the lowest index, in either impl,
    regardless of candidate order."""
    chip = FlashChip(GEOM, CellTechnology.TLC, seed=0)
    page_map = PageMap(GEOM.total_blocks, GEOM.pages_per_block)
    # every block identical: 2 valid pages, same wear, same age
    lpn = 0
    for block in range(GEOM.total_blocks):
        for page in range(2):
            page_map.record_write(lpn, (block, page))
            lpn += 1
    reversed_candidates = [
        (i, chip.blocks[i]) for i in reversed(range(GEOM.total_blocks))
    ]
    assert select_victim(reversed_candidates, page_map, policy, 1.0) == 0
    assert select_victim_arrays(
        np.arange(GEOM.total_blocks)[::-1].copy(), page_map, policy, 1.0,
        chip.arrays,
    ) == 0


def test_observer_sees_one_span_and_one_count_per_invocation():
    chip, page_map, now = _random_state(0)
    idx = np.arange(GEOM.total_blocks)
    disarmed = select_victim_arrays(
        idx, page_map, GcPolicy.GREEDY, now, chip.arrays
    )
    with observed(trace=False) as obs:
        for _ in range(3):
            armed = select_victim_arrays(
                idx, page_map, GcPolicy.GREEDY, now, chip.arrays
            )
        snap = obs.registry.snapshot()
    assert armed == disarmed  # observation never changes the choice
    assert snap["spans"]["gc.select_victim"]["calls"] == 3
    eligible = snap["counters"]["gc.candidates_considered"]
    assert eligible > 0 and eligible % 3 == 0


def test_replay_stats_identical_with_and_without_vectorized_gc():
    """End-to-end pin: the whole FTL makes the same decisions."""
    base = dict(days=10, seed=11, analytic=False)
    fast = replay(FtlReplayConfig(vectorized_gc=True, **base))
    slow = replay(FtlReplayConfig(vectorized_gc=False, **base))
    assert fast.stats == slow.stats
    assert fast.mean_wear == slow.mean_wear
    assert fast.max_wear == slow.max_wear
