"""Property suite pinning the numpy ``PageMap`` to the dict reference.

``DictPageMap`` is the pre-vectorization implementation, kept verbatim
as the semantic oracle.  Hypothesis drives both maps through the same
*legal* operation sequences -- an embedded allocator guarantees every
``record_write`` lands on a freshly programmed page and every
``on_erase`` hits a fully dead block, exactly the discipline the FTL
enforces -- and every observable (lookups, valid counts, live scans,
mapped totals, freed-trim returns) must agree at every step.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ftl.mapping import DictPageMap, PageMap

BLOCKS = 6
PAGES = 4
LPN_SPACE = 14  # < BLOCKS * PAGES so overwrite pressure builds

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["write", "trim", "batch_write", "batch_trim", "erase"]),
        st.integers(min_value=0, max_value=LPN_SPACE - 1),
        st.lists(
            st.integers(min_value=0, max_value=LPN_SPACE - 1),
            min_size=1,
            max_size=PAGES,
        ),
    ),
    max_size=80,
)


class _Allocator:
    """Minimal FTL-shaped page allocator shared by both maps under test.

    Tracks per-block write frontiers so generated operations stay legal:
    writes go to fresh pages, erases only hit blocks with no live data.
    """

    def __init__(self) -> None:
        self.next_page = [0] * BLOCKS

    def place(self, count: int) -> tuple[int, int] | None:
        """(block, start_page) of a fresh ``count``-page run, or None."""
        for block in range(BLOCKS):
            if self.next_page[block] + count <= PAGES:
                start = self.next_page[block]
                self.next_page[block] += count
                return block, start
        return None

    def erasable(self, ref: DictPageMap) -> int | None:
        """A fully-written, fully-dead block, or None."""
        for block in range(BLOCKS):
            if self.next_page[block] > 0 and ref.valid_pages(block) == 0:
                return block
        return None


def _assert_equivalent(fast: PageMap, ref: DictPageMap) -> None:
    assert fast.mapped_count() == ref.mapped_count()
    assert fast.all_mapped_lpns() == ref.all_mapped_lpns()
    for lpn in range(LPN_SPACE):
        assert fast.lookup(lpn) == ref.lookup(lpn)
        assert fast.is_mapped(lpn) == ref.is_mapped(lpn)
    for block in range(BLOCKS):
        assert fast.valid_pages(block) == ref.valid_pages(block)
        assert sorted(fast.live_lpns(block)) == sorted(ref.live_lpns(block))
    counts = fast.valid_counts(np.arange(BLOCKS))
    assert counts.tolist() == [ref.valid_pages(b) for b in range(BLOCKS)]
    mapped = fast.is_mapped_many(np.arange(-2, LPN_SPACE + 2))
    assert mapped.tolist() == [
        ref.is_mapped(lpn) for lpn in range(-2, LPN_SPACE + 2)
    ]


@given(ops=op_strategy)
@settings(max_examples=60, deadline=None)
def test_pagemap_matches_dict_reference(ops):
    """Scalar + batched updates agree with the reference at every step."""
    fast = PageMap(BLOCKS, PAGES)
    ref = DictPageMap(BLOCKS, PAGES)
    alloc = _Allocator()
    for kind, lpn, lpns in ops:
        if kind == "write":
            placed = alloc.place(1)
            if placed is None:
                continue
            fast.record_write(lpn, placed)
            ref.record_write(lpn, placed)
        elif kind == "trim":
            assert fast.invalidate(lpn) == ref.invalidate(lpn)
        elif kind == "batch_write":
            placed = alloc.place(len(lpns))
            if placed is None:
                continue
            block, start = placed
            fast.record_writes(np.asarray(lpns), block, start)
            ref.record_writes(np.asarray(lpns), block, start)
        elif kind == "batch_trim":
            freed_fast = fast.invalidate_many(np.asarray(lpns))
            freed_ref = ref.invalidate_many(np.asarray(lpns))
            assert freed_fast.tolist() == freed_ref.tolist()
        else:  # erase
            block = alloc.erasable(ref)
            if block is None:
                continue
            fast.on_erase(block)
            ref.on_erase(block)
            alloc.next_page[block] = 0
        _assert_equivalent(fast, ref)


@given(
    lpns=st.lists(
        st.integers(min_value=0, max_value=LPN_SPACE - 1),
        min_size=1,
        max_size=PAGES,
        unique=True,
    )
)
@settings(max_examples=40, deadline=None)
def test_record_writes_assume_unique_matches_general_path(lpns):
    """The migration fast path is state-identical to the general one."""
    general = PageMap(BLOCKS, PAGES)
    trusted = PageMap(BLOCKS, PAGES)
    # pre-map every LPN (assume_unique callers hold already-mapped LPNs)
    for i, lpn in enumerate(range(LPN_SPACE)):
        addr = (i // PAGES, i % PAGES)
        general.record_write(lpn, addr)
        trusted.record_write(lpn, addr)
    block, start = BLOCKS - 1, 0
    arr = np.asarray(lpns, dtype=np.int64)
    general.record_writes(arr, block, start)
    trusted.record_writes(arr, block, start, assume_unique=True)
    assert general.all_mapped_lpns() == trusted.all_mapped_lpns()
    for lpn in range(LPN_SPACE):
        assert general.lookup(lpn) == trusted.lookup(lpn)
    for b in range(BLOCKS):
        assert general.valid_pages(b) == trusted.valid_pages(b)
        assert general.live_lpns(b) == trusted.live_lpns(b)


@pytest.mark.parametrize("cls", [PageMap, DictPageMap])
def test_on_erase_with_valid_pages_is_a_caller_bug(cls):
    """Erasing a block that still holds live data must raise, not corrupt."""
    page_map = cls(BLOCKS, PAGES)
    page_map.record_write(3, (1, 0))
    with pytest.raises(RuntimeError, match="valid pages"):
        page_map.on_erase(1)
    # the live mapping survived the refused erase
    assert page_map.lookup(3) == (1, 0)
    page_map.invalidate(3)
    page_map.on_erase(1)  # dead block erases fine
    assert page_map.valid_pages(1) == 0
