"""Block parity (§4.2 SYS redundancy) and FTL timing accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, pseudo_mode
from repro.flash.chip import FlashChip
from repro.flash.geometry import SMALL_GEOMETRY
from repro.ftl.ftl import Ftl
from repro.ftl.streams import StreamConfig


@pytest.fixture
def parity_ftl():
    chip = FlashChip(SMALL_GEOMETRY, CellTechnology.PLC, seed=21)
    streams = [
        StreamConfig("sys", pseudo_mode(CellTechnology.PLC, 4),
                     POLICIES[ProtectionLevel.STRONG]),
    ]
    ftl = Ftl(chip, streams, {"sys": list(range(SMALL_GEOMETRY.total_blocks))})
    return ftl, chip


class TestParityLayout:
    def test_capacity_excludes_parity_pages(self, parity_ftl):
        ftl, chip = parity_ftl
        usable = chip.blocks[0].usable_pages
        expected = (usable - 1) * SMALL_GEOMETRY.total_blocks
        assert ftl.stream_capacity_pages("sys") == expected

    def test_parity_page_sealed_when_block_fills(self, parity_ftl, rng):
        ftl, chip = parity_ftl
        data_pages = chip.blocks[0].usable_pages - 1
        payload = rng.bytes(64)
        for lpn in range(data_pages + 1):  # one more triggers the seal
            ftl.write(lpn, payload, "sys")
        first_block = None
        for i, block in enumerate(chip.blocks):
            if block.free_pages == 0:
                first_block = block
                break
        assert first_block is not None
        assert first_block.is_programmed(first_block.usable_pages - 1)

    def test_parity_page_is_xor_of_data_pages(self, parity_ftl, rng):
        ftl, chip = parity_ftl
        data_pages = chip.blocks[0].usable_pages - 1
        for lpn in range(data_pages + 1):
            ftl.write(lpn, rng.bytes(64), "sys")
        block_index = next(
            i for i, b in enumerate(chip.blocks) if b.free_pages == 0
        )
        block = chip.blocks[block_index]
        acc = bytearray(SMALL_GEOMETRY.page_size_bytes)
        for page in range(block.usable_pages - 1):
            for i, byte in enumerate(block.read_clean(page)):
                acc[i] ^= byte
        assert bytes(acc) == block.read_clean(block.usable_pages - 1)


class TestParityRecovery:
    def test_recovers_page_beyond_ecc(self, parity_ftl, rng):
        """A page corrupted beyond BCH t=8 is rebuilt from block parity."""
        ftl, chip = parity_ftl
        data_pages = chip.blocks[0].usable_pages - 1
        payloads = {}
        for lpn in range(data_pages + 1):
            payloads[lpn] = rng.bytes(ftl.logical_page_bytes("sys"))
            ftl.write(lpn, payloads[lpn], "sys")
        # find a sealed block and smash one of its data pages
        block_index = next(i for i, b in enumerate(chip.blocks) if b.free_pages == 0)
        block = chip.blocks[block_index]
        victim_page = 0
        victim_lpn = next(
            lpn for page, lpn in ftl.page_map.live_lpns(block_index)
            if page == victim_page
        )
        state = block.page_info(victim_page)
        corrupted = bytearray(state.data.tobytes())
        for i in range(0, 200):  # far beyond t=8 per codeword
            corrupted[i] ^= 0xFF
        state.data = np.frombuffer(bytes(corrupted), dtype=np.uint8).copy()
        result = ftl.read(victim_lpn)
        assert result.payload == payloads[victim_lpn]
        assert ftl.stats.parity_recoveries == 1

    def test_no_recovery_for_unsealed_block(self, parity_ftl, rng):
        """Pages in the open (unsealed) block cannot use parity."""
        ftl, chip = parity_ftl
        payload = rng.bytes(ftl.logical_page_bytes("sys"))
        ftl.write(0, payload, "sys")
        addr = ftl.page_map.lookup(0)
        block = chip.blocks[addr[0]]
        state = block.page_info(addr[1])
        corrupted = bytearray(state.data.tobytes())
        for i in range(200):
            corrupted[i] ^= 0xFF
        state.data = np.frombuffer(bytes(corrupted), dtype=np.uint8).copy()
        result = ftl.read(0)
        assert result.uncorrectable_codewords > 0
        assert ftl.stats.parity_recoveries == 0


class TestTimingAccounting:
    def test_reads_and_writes_accrue_time(self, parity_ftl, rng):
        ftl, _ = parity_ftl
        ftl.write(0, rng.bytes(64), "sys")
        assert ftl.stats.program_time_us > 0
        ftl.read(0)
        assert ftl.stats.read_time_us > 0

    def test_gc_accrues_erase_time(self, parity_ftl, rng):
        ftl, _ = parity_ftl
        for i in range(400):
            ftl.write(int(rng.integers(0, 20)), rng.bytes(64), "sys")
        assert ftl.stats.gc_erases > 0
        assert ftl.stats.erase_time_us > 0

    def test_spare_stream_reads_faster_than_plc_native_program(self, rng):
        """Sanity: per-op times follow the stream's mode."""
        chip = FlashChip(SMALL_GEOMETRY, CellTechnology.PLC, seed=3)
        total = SMALL_GEOMETRY.total_blocks
        streams = [
            StreamConfig("spare", pseudo_mode(CellTechnology.PLC, 1),
                         POLICIES[ProtectionLevel.NONE]),
        ]
        ftl = Ftl(chip, streams, {"spare": list(range(total))})
        ftl.write(0, b"x", "spare")
        pslc_program = ftl.stats.program_time_us
        assert pslc_program == pytest.approx(200.0)  # pseudo-SLC speed
