"""The FTL fast-path equivalence suite.

The perf work gives the FTL three independent accelerations -- the
analytic chip path (no byte materialization), the vectorized GC victim
selector, and batched host operations -- and this suite pins the
contract that makes them safe: **every combination produces the
identical** :class:`~repro.ftl.ftl.FtlStats` **and wear outcome** for
the same replay config.  NAND timing constants are integer-valued
floats, so even the accumulated device-time counters must match
exactly, not approximately.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.ecc.policy import ProtectionLevel
from repro.ftl.replay import FtlReplayConfig, FtlReplayResult, replay

BASE = dict(days=30, seed=5, capacity_gb=64.0)


def _outcome(result: FtlReplayResult) -> tuple:
    return (result.stats, result.mean_wear, result.max_wear,
            result.host_ops, result.retired_blocks)


@pytest.fixture(scope="module")
def bit_exact_baseline() -> FtlReplayResult:
    """The ground truth: byte-materializing chip, scalar GC, scalar ops."""
    return replay(FtlReplayConfig(analytic=False, vectorized_gc=False, **BASE))


@pytest.mark.parametrize(
    "analytic,vectorized_gc",
    [(False, True), (True, False), (True, True)],
    ids=["vec-gc-only", "analytic-only", "analytic+vec-gc"],
)
def test_fast_paths_land_identical_stats(bit_exact_baseline, analytic,
                                         vectorized_gc):
    fast = replay(
        FtlReplayConfig(analytic=analytic, vectorized_gc=vectorized_gc, **BASE)
    )
    assert _outcome(fast) == _outcome(bit_exact_baseline)


@pytest.mark.parametrize("mix", ["light", "heavy"])
def test_equivalence_holds_across_mixes(mix):
    slow = replay(FtlReplayConfig(mix=mix, days=20, seed=9, analytic=False,
                                  vectorized_gc=False))
    fast = replay(FtlReplayConfig(mix=mix, days=20, seed=9, analytic=True,
                                  vectorized_gc=True))
    assert _outcome(fast) == _outcome(slow)


def test_protected_streams_refuse_the_analytic_shortcut():
    """WEAK protection needs real bytes through the codec: requesting
    ``analytic=True`` must quietly run bit-exact, not corrupt stats.

    A deliberately tiny device: the pure-python BCH codec costs ~10 ms
    per page, so the standard replay chip would take minutes here.
    """
    tiny = dict(days=3, seed=2, page_size_bytes=512, pages_per_block=8,
                blocks=12, protection=ProtectionLevel.WEAK)
    protected = replay(FtlReplayConfig(analytic=True, **tiny))
    reference = replay(FtlReplayConfig(analytic=False, **tiny))
    assert _outcome(protected) == _outcome(reference)
    # the codec actually ran: ECC-corrected bits are possible, and the
    # host op counts still line up with the unprotected replay's shape
    assert protected.stats.host_writes == reference.stats.host_writes


def test_replay_is_deterministic_in_config():
    config = FtlReplayConfig(days=15, seed=123)
    first, second = replay(config), replay(config)
    assert _outcome(first) == _outcome(second)
    different = replay(dataclasses.replace(config, seed=124))
    assert different.stats != first.stats


def test_replay_exercises_the_mechanisms_it_claims_to_model():
    """Guard against a hollow benchmark: the default horizon must drive
    real GC, wear-leveling, and wear accumulation."""
    result = replay(FtlReplayConfig(days=45, seed=0))
    assert result.stats.gc_erases > 0
    assert result.stats.gc_migrations > 0
    assert result.stats.host_writes > result.host_ops // 3
    # WL passes run weekly; at 45-day wear spreads they rightly find
    # nothing to move, so only the erase/migration machinery is asserted
    assert 0.0 < result.mean_wear <= result.max_wear
