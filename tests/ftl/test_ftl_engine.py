"""FTL engine: writes, reads, GC, streams, health, relocation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.chip import FlashChip
from repro.flash.geometry import SMALL_GEOMETRY
from repro.ftl.ftl import Ftl, OutOfSpaceError
from repro.ftl.streams import StreamConfig
from repro.ftl.wear_leveling import WearLevelerConfig


def make_ftl(seed=0, sys_protection=ProtectionLevel.STRONG,
             spare_protection=ProtectionLevel.NONE):
    chip = FlashChip(SMALL_GEOMETRY, CellTechnology.PLC, seed=seed)
    total = SMALL_GEOMETRY.total_blocks
    streams = [
        StreamConfig("sys", pseudo_mode(CellTechnology.PLC, 4), POLICIES[sys_protection]),
        StreamConfig(
            "spare",
            native_mode(CellTechnology.PLC),
            POLICIES[spare_protection],
            wear_leveling=WearLevelerConfig(enabled=False),
        ),
    ]
    blocks = {"sys": list(range(total // 2)), "spare": list(range(total // 2, total))}
    return Ftl(chip, streams, blocks), chip


class TestConstruction:
    def test_overlapping_blocks_rejected(self):
        chip = FlashChip(SMALL_GEOMETRY, CellTechnology.PLC)
        streams = [
            StreamConfig("a", native_mode(CellTechnology.PLC), POLICIES[ProtectionLevel.NONE]),
            StreamConfig("b", native_mode(CellTechnology.PLC), POLICIES[ProtectionLevel.NONE]),
        ]
        with pytest.raises(ValueError):
            Ftl(chip, streams, {"a": [0, 1], "b": [1, 2]})

    def test_stream_name_mismatch_rejected(self):
        chip = FlashChip(SMALL_GEOMETRY, CellTechnology.PLC)
        streams = [
            StreamConfig("a", native_mode(CellTechnology.PLC), POLICIES[ProtectionLevel.NONE])
        ]
        with pytest.raises(ValueError):
            Ftl(chip, streams, {"x": [0]})

    def test_blocks_reconfigured_to_stream_mode(self):
        ftl, chip = make_ftl()
        assert chip.blocks[0].mode == pseudo_mode(CellTechnology.PLC, 4)
        assert chip.blocks[SMALL_GEOMETRY.total_blocks - 1].mode == native_mode(
            CellTechnology.PLC
        )


class TestIO:
    def test_write_read_roundtrip(self, rng):
        ftl, _ = make_ftl()
        payload = rng.bytes(ftl.logical_page_bytes("sys"))
        ftl.write(10, payload, "sys")
        assert ftl.read(10).payload == payload
        assert ftl.stream_of(10) == "sys"

    def test_read_unmapped_raises(self):
        ftl, _ = make_ftl()
        with pytest.raises(KeyError):
            ftl.read(999)

    def test_oversized_payload_rejected(self):
        ftl, _ = make_ftl()
        with pytest.raises(ValueError):
            ftl.write(0, b"x" * (ftl.logical_page_bytes("sys") + 1), "sys")

    def test_trim_unmaps(self, rng):
        ftl, _ = make_ftl()
        ftl.write(3, rng.bytes(16), "sys")
        ftl.trim(3)
        assert ftl.stream_of(3) is None
        with pytest.raises(KeyError):
            ftl.read(3)

    def test_overwrite_moves_between_streams(self, rng):
        """Writing an existing LPN to another stream invalidates the old
        copy and accounts it to the new stream."""
        ftl, _ = make_ftl()
        ftl.write(5, rng.bytes(16), "sys")
        ftl.write(5, rng.bytes(16), "spare")
        assert ftl.stream_of(5) == "spare"
        assert ftl.stream_live_pages("sys") == 0
        assert ftl.stream_live_pages("spare") == 1


class TestGarbageCollection:
    def test_sustained_overwrites_trigger_gc_and_stay_correct(self, rng):
        ftl, chip = make_ftl()
        reference = {}
        for i in range(600):
            lpn = int(rng.integers(0, 30))
            payload = rng.bytes(ftl.logical_page_bytes("sys"))
            ftl.write(lpn, payload, "sys")
            reference[lpn] = payload
        assert ftl.stats.gc_erases > 0
        for lpn, payload in reference.items():
            assert ftl.read(lpn).payload.startswith(payload)

    def test_out_of_space_when_stream_full_of_valid_data(self, rng):
        ftl, _ = make_ftl()
        pages = ftl.stream_capacity_pages("spare")
        with pytest.raises(OutOfSpaceError):
            for lpn in range(pages + 10):
                ftl.write(10_000 + lpn, rng.bytes(64), "spare")

    def test_gc_preserves_data_across_streams_independently(self, rng):
        ftl, _ = make_ftl()
        sys_ref = {}
        spare_ref = {}
        for i in range(250):
            lpn = int(rng.integers(0, 12))
            p1 = rng.bytes(ftl.logical_page_bytes("sys"))
            ftl.write(lpn, p1, "sys")
            sys_ref[lpn] = p1
            lpn2 = 500 + int(rng.integers(0, 12))
            p2 = rng.bytes(ftl.logical_page_bytes("spare"))
            ftl.write(lpn2, p2, "spare")
            spare_ref[lpn2] = p2
        for lpn, payload in sys_ref.items():
            assert ftl.read(lpn).payload.startswith(payload)
        # spare is unprotected: allow rare fresh-silicon bit flips
        mismatches = sum(
            1 for lpn, payload in spare_ref.items() if ftl.read(lpn).payload != payload
        )
        assert mismatches <= 2


class TestRelocation:
    def test_relocate_changes_stream(self, rng):
        ftl, _ = make_ftl()
        payload = rng.bytes(ftl.logical_page_bytes("sys"))
        ftl.write(8, payload, "sys")
        result = ftl.relocate(8, "spare")
        assert result.payload == payload
        assert ftl.stream_of(8) == "spare"
        assert ftl.read(8).payload[: len(payload)] == payload


class TestHealth:
    def test_health_check_retires_worn_free_blocks(self):
        from repro.ftl.bad_blocks import BlockHealthPolicy

        chip = FlashChip(SMALL_GEOMETRY, CellTechnology.PLC, seed=1)
        total = SMALL_GEOMETRY.total_blocks
        health = BlockHealthPolicy(max_rber=4e-4, retention_horizon_years=1.0)
        streams = [
            StreamConfig(
                "spare",
                native_mode(CellTechnology.PLC),
                POLICIES[ProtectionLevel.NONE],
                health=health,
            )
        ]
        ftl = Ftl(chip, streams, {"spare": list(range(total))})
        for block in chip.blocks[:4]:
            block.pec = 100_000  # far beyond any budget
        ftl.check_stream_health("spare")
        assert ftl.stats.blocks_retired == 4
        assert ftl.stream_capacity_pages("spare") == (total - 4) * SMALL_GEOMETRY.pages_per_block

    def test_health_check_resuscitates_when_ladder_allows(self):
        from repro.flash.error_model import ErrorModel
        from repro.ftl.bad_blocks import BlockHealthPolicy

        chip = FlashChip(SMALL_GEOMETRY, CellTechnology.PLC, seed=1)
        total = SMALL_GEOMETRY.total_blocks
        health = BlockHealthPolicy(
            max_rber=4e-4,
            retention_horizon_years=1.0,
            resuscitation_modes=(pseudo_mode(CellTechnology.PLC, 3),),
        )
        streams = [
            StreamConfig(
                "spare",
                native_mode(CellTechnology.PLC),
                POLICIES[ProtectionLevel.NONE],
                health=health,
            )
        ]
        ftl = Ftl(chip, streams, {"spare": list(range(total))})
        worn = int(
            ErrorModel(native_mode(CellTechnology.PLC)).pec_for_rber(4e-4, 1.0)
        ) + 20
        chip.blocks[0].pec = worn
        ftl.check_stream_health("spare")
        assert ftl.stats.blocks_resuscitated == 1
        assert chip.blocks[0].mode == pseudo_mode(CellTechnology.PLC, 3)


class TestWearLevelingIntegration:
    def test_wl_disabled_stream_never_migrates(self, rng):
        ftl, _ = make_ftl()
        for i in range(200):
            ftl.write(700 + (i % 10), rng.bytes(64), "spare")
        moved = ftl.run_wear_leveling("spare")
        assert moved == 0
        assert ftl.stats.wl_migrations == 0

    def test_wl_enabled_stream_migrates_on_spread(self, rng):
        ftl, chip = make_ftl()
        # fill several sys blocks with cold valid data
        for lpn in range(30):
            ftl.write(lpn, rng.bytes(64), "sys")
        # another sys block becomes much more worn
        stream = ftl.stream("sys")
        worn_index = stream.free[0]
        chip.blocks[worn_index].pec = 100
        moved = ftl.run_wear_leveling("sys")
        assert moved >= 1
        assert ftl.stats.wl_migrations >= 1
        # data survives the migration
        assert ftl.read(0).payload[:64] is not None


class TestForceRetire:
    """Fault-injection path: retire a specific block outright."""

    def test_live_data_survives_forced_retirement(self):
        ftl, chip = make_ftl()
        payloads = {lpn: bytes([lpn + 1]) * 8 for lpn in range(6)}
        for lpn, payload in payloads.items():
            ftl.write(lpn, payload, "sys")
        victim = next(
            i for i in ftl.stream("sys").blocks
            if any(True for _ in ftl.page_map.live_lpns(i))
        )
        assert ftl.force_retire("sys", victim)
        assert chip.blocks[victim].retired
        for lpn, payload in payloads.items():
            assert ftl.read(lpn).payload.startswith(payload)

    def test_free_block_retires_without_migration(self):
        ftl, chip = make_ftl()
        victim = ftl.stream("sys").free[0]
        assert ftl.force_retire("sys", victim)
        assert chip.blocks[victim].retired
        assert victim not in ftl.stream("sys").free

    def test_double_retire_is_refused(self):
        ftl, _ = make_ftl()
        victim = ftl.stream("sys").free[0]
        assert ftl.force_retire("sys", victim)
        assert not ftl.force_retire("sys", victim)
        assert ftl.stats.blocks_retired == 1

    def test_foreign_block_rejected(self):
        ftl, _ = make_ftl()
        spare_block = ftl.stream("spare").blocks[0]
        with pytest.raises(ValueError, match="not in stream"):
            ftl.force_retire("sys", spare_block)

    def test_open_block_can_be_force_retired(self):
        ftl, chip = make_ftl()
        ftl.write(0, b"x" * 8, "sys")
        victim = ftl.stream("sys").open_block
        assert victim is not None
        assert ftl.force_retire("sys", victim)
        assert ftl.stream("sys").open_block != victim
        assert ftl.read(0).payload.startswith(b"x" * 8)

    def test_writes_continue_after_forced_retirement(self):
        ftl, _ = make_ftl()
        ftl.write(0, b"a" * 8, "sys")
        ftl.force_retire("sys", ftl.stream("sys").blocks[0])
        ftl.write(1, b"b" * 8, "sys")
        assert ftl.read(1).payload.startswith(b"b" * 8)
