"""Static wear leveler behaviour, including the disabled mode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash.block import Block
from repro.flash.cell import CellTechnology, native_mode
from repro.flash.geometry import SMALL_GEOMETRY
from repro.ftl.mapping import PageMap
from repro.ftl.wear_leveling import WearLeveler, WearLevelerConfig


def make_pool(pecs: list[int], valid: list[int]):
    rng = np.random.default_rng(0)
    page_map = PageMap(total_blocks=len(pecs), pages_per_block=8)
    candidates = []
    for i, (pec, v) in enumerate(zip(pecs, valid)):
        block = Block(SMALL_GEOMETRY, native_mode(CellTechnology.TLC), rng)
        block.pec = pec
        for p in range(v):
            block.program(p, b"x")
            page_map.record_write(i * 10 + p, (i, p))
        candidates.append((i, block))
    return candidates, page_map


class TestDisabled:
    def test_disabled_never_nominates(self):
        """§4.3: wear leveling off on SPARE -- no migrations, ever."""
        leveler = WearLeveler(WearLevelerConfig(enabled=False))
        candidates, page_map = make_pool([0, 500], [4, 4])
        assert leveler.pick_cold_victim(candidates, page_map) is None
        assert leveler.migrations_triggered == 0


class TestEnabled:
    def test_below_threshold_no_action(self):
        leveler = WearLeveler(WearLevelerConfig(enabled=True, pec_spread_threshold=100))
        candidates, page_map = make_pool([0, 50], [4, 4])
        assert leveler.pick_cold_victim(candidates, page_map) is None

    def test_above_threshold_nominates_least_worn_holder(self):
        leveler = WearLeveler(WearLevelerConfig(enabled=True, pec_spread_threshold=20))
        candidates, page_map = make_pool([5, 100, 60], [3, 3, 3])
        assert leveler.pick_cold_victim(candidates, page_map) == 0
        assert leveler.migrations_triggered == 1

    def test_empty_blocks_not_nominated(self):
        """Migrating an empty block is pointless; pick a data holder."""
        leveler = WearLeveler(WearLevelerConfig(enabled=True, pec_spread_threshold=20))
        candidates, page_map = make_pool([5, 100, 30], [0, 2, 2])
        assert leveler.pick_cold_victim(candidates, page_map) == 2

    def test_retired_blocks_ignored(self):
        leveler = WearLeveler(WearLevelerConfig(enabled=True, pec_spread_threshold=20))
        candidates, page_map = make_pool([5, 100], [2, 2])
        candidates[0][1].retire()
        # only one live block left: no spread to level
        assert leveler.pick_cold_victim(candidates, page_map) is None

    def test_single_block_no_action(self):
        leveler = WearLeveler(WearLevelerConfig(enabled=True))
        candidates, page_map = make_pool([500], [2])
        assert leveler.pick_cold_victim(candidates, page_map) is None
