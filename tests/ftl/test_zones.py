"""Zoned interface: ZNS semantics, class placement, offline zones."""

from __future__ import annotations

import pytest

from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.chip import FlashChip
from repro.flash.geometry import SMALL_GEOMETRY
from repro.ftl.zones import ZoneClass, ZonedDevice, ZoneError, ZoneState


@pytest.fixture
def zoned() -> ZonedDevice:
    chip = FlashChip(SMALL_GEOMETRY, CellTechnology.PLC, seed=13)
    total = SMALL_GEOMETRY.total_blocks
    classes = {
        "sys": ZoneClass("sys", pseudo_mode(CellTechnology.PLC, 4),
                         POLICIES[ProtectionLevel.STRONG]),
        "spare": ZoneClass("spare", native_mode(CellTechnology.PLC),
                           POLICIES[ProtectionLevel.NONE]),
    }
    assignment = {
        "sys": list(range(total // 2)),
        "spare": list(range(total // 2, total)),
    }
    return ZonedDevice(chip, classes, assignment)


class TestConstruction:
    def test_overlapping_assignment_rejected(self):
        chip = FlashChip(SMALL_GEOMETRY, CellTechnology.PLC)
        zclass = ZoneClass("a", native_mode(CellTechnology.PLC),
                           POLICIES[ProtectionLevel.NONE])
        with pytest.raises(ValueError):
            ZonedDevice(chip, {"a": zclass, "b": zclass}, {"a": [0], "b": [0]})

    def test_zones_start_empty(self, zoned):
        assert all(z.state is ZoneState.EMPTY for z in zoned.zones())

    def test_class_filter(self, zoned):
        sys_zones = zoned.zones("sys")
        assert all(z.zone_class == "sys" for z in sys_zones)
        assert len(sys_zones) == SMALL_GEOMETRY.total_blocks // 2

    def test_zone_modes_follow_class(self, zoned):
        sys_zone = zoned.zones("sys")[0]
        spare_zone = zoned.zones("spare")[0]
        assert sys_zone.capacity_pages < spare_zone.capacity_pages  # pQLC < PLC


class TestAppend:
    def test_append_advances_write_pointer(self, zoned, rng):
        zone = zoned.zones("spare")[0].zone_id
        payload = rng.bytes(zoned.payload_bytes("spare"))
        assert zoned.append(zone, payload) == 0
        assert zoned.append(zone, payload) == 1
        assert zoned.info(zone).write_pointer == 2
        assert zoned.info(zone).state is ZoneState.OPEN

    def test_append_roundtrip_through_class_codec(self, zoned, rng):
        zone = zoned.zones("sys")[0].zone_id
        payload = rng.bytes(zoned.payload_bytes("sys"))
        offset = zoned.append(zone, payload)
        assert zoned.read(zone, offset).payload == payload

    def test_zone_fills_and_rejects_append(self, zoned, rng):
        zone_info = zoned.zones("spare")[0]
        zone = zone_info.zone_id
        for _ in range(zone_info.capacity_pages):
            zoned.append(zone, b"x")
        assert zoned.info(zone).state is ZoneState.FULL
        with pytest.raises(ZoneError):
            zoned.append(zone, b"x")

    def test_oversized_payload_rejected(self, zoned):
        zone = zoned.zones("sys")[0].zone_id
        with pytest.raises(ZoneError):
            zoned.append(zone, b"x" * (zoned.payload_bytes("sys") + 1))

    def test_unknown_zone_rejected(self, zoned):
        with pytest.raises(ZoneError):
            zoned.append(10_000, b"x")


class TestResetFinish:
    def test_reset_costs_a_pec_and_empties(self, zoned):
        zone = zoned.zones("spare")[0].zone_id
        zoned.append(zone, b"x")
        zoned.reset(zone)
        assert zoned.info(zone).state is ZoneState.EMPTY
        assert zoned.info(zone).write_pointer == 0
        assert zoned.chip.blocks[zone].pec == 1
        zoned.append(zone, b"y")  # reusable after reset

    def test_finish_blocks_appends_until_reset(self, zoned):
        zone = zoned.zones("spare")[0].zone_id
        zoned.append(zone, b"x")
        zoned.finish(zone)
        with pytest.raises(ZoneError):
            zoned.append(zone, b"y")
        zoned.reset(zone)
        zoned.append(zone, b"y")

    def test_finish_full_zone_rejected(self, zoned):
        zone_info = zoned.zones("spare")[0]
        zone = zone_info.zone_id
        for _ in range(zone_info.capacity_pages):
            zoned.append(zone, b"x")
        with pytest.raises(ZoneError):
            zoned.finish(zone)


class TestOffline:
    def test_offline_zone_shrinks_capacity(self, zoned):
        before = zoned.usable_capacity_pages()
        zone = zoned.zones("spare")[0].zone_id
        zoned.set_offline(zone)
        lost = zoned.info(zone).capacity_pages
        assert zoned.usable_capacity_pages() == before - lost

    def test_offline_zone_rejects_everything(self, zoned):
        zone = zoned.zones("spare")[0].zone_id
        zoned.set_offline(zone)
        with pytest.raises(ZoneError):
            zoned.append(zone, b"x")
        with pytest.raises(ZoneError):
            zoned.reset(zone)
