"""Property-based zoned-interface test vs a reference zone model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, pseudo_mode
from repro.flash.chip import FlashChip
from repro.flash.geometry import Geometry
from repro.ftl.zones import ZoneClass, ZonedDevice, ZoneError, ZoneState

GEOM = Geometry(page_size_bytes=512, pages_per_block=4, blocks_per_plane=8,
                planes_per_die=1, dies=1)

ops = st.lists(
    st.tuples(
        st.sampled_from(["append", "reset", "finish"]),
        st.integers(min_value=0, max_value=7),  # zone id
        st.integers(min_value=0, max_value=2**16),  # payload seed
    ),
    max_size=80,
)


@given(operations=ops)
@settings(max_examples=50, deadline=None)
def test_zoned_device_matches_reference(operations):
    """The zoned device agrees with a trivial reference model on state,
    write pointers, and (strong-ECC) readback contents."""
    chip = FlashChip(GEOM, CellTechnology.PLC, seed=9)
    zclass = ZoneClass("sys", pseudo_mode(CellTechnology.PLC, 4),
                       POLICIES[ProtectionLevel.STRONG])
    device = ZonedDevice(chip, {"sys": zclass}, {"sys": list(range(8))})
    capacity = device.info(0).capacity_pages
    payload_bytes = device.payload_bytes("sys")

    # reference: per-zone list of payloads + finished flag
    reference: dict[int, list[bytes]] = {z: [] for z in range(8)}
    finished: dict[int, bool] = {z: False for z in range(8)}

    for op, zone, seed in operations:
        rng = np.random.default_rng(seed)
        if op == "append":
            payload = rng.bytes(payload_bytes)
            full = len(reference[zone]) >= capacity
            if full or finished[zone]:
                with pytest.raises(ZoneError):
                    device.append(zone, payload)
            else:
                offset = device.append(zone, payload)
                assert offset == len(reference[zone])
                reference[zone].append(payload)
        elif op == "reset":
            device.reset(zone)
            reference[zone] = []
            finished[zone] = False
        else:  # finish
            full = len(reference[zone]) >= capacity
            if full or finished[zone]:
                with pytest.raises(ZoneError):
                    device.finish(zone)
            else:
                device.finish(zone)
                finished[zone] = True

    # final audit: states, write pointers, contents
    for zone in range(8):
        info = device.info(zone)
        assert info.write_pointer == len(reference[zone])
        if finished[zone]:
            assert info.state is ZoneState.FINISHED
        elif len(reference[zone]) >= capacity:
            assert info.state is ZoneState.FULL
        elif reference[zone]:
            assert info.state is ZoneState.OPEN
        else:
            assert info.state is ZoneState.EMPTY
        for offset, payload in enumerate(reference[zone]):
            assert device.read(zone, offset).payload == payload
