"""Page map invariants, including hypothesis-driven operation sequences."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ftl.mapping import PageMap


@pytest.fixture
def page_map() -> PageMap:
    return PageMap(total_blocks=4, pages_per_block=8)


class TestBasics:
    def test_unmapped_lookup_is_none(self, page_map):
        assert page_map.lookup(42) is None
        assert not page_map.is_mapped(42)

    def test_record_write_maps(self, page_map):
        page_map.record_write(7, (1, 3))
        assert page_map.lookup(7) == (1, 3)
        assert page_map.valid_pages(1) == 1
        assert page_map.mapped_count() == 1

    def test_overwrite_invalidates_old_copy(self, page_map):
        page_map.record_write(7, (1, 3))
        page_map.record_write(7, (2, 0))
        assert page_map.lookup(7) == (2, 0)
        assert page_map.valid_pages(1) == 0
        assert page_map.valid_pages(2) == 1

    def test_invalidate_returns_freed_address(self, page_map):
        page_map.record_write(7, (1, 3))
        assert page_map.invalidate(7) == (1, 3)
        assert page_map.invalidate(7) is None
        assert page_map.valid_pages(1) == 0

    def test_live_lpns_reflects_current_mapping_only(self, page_map):
        page_map.record_write(1, (0, 0))
        page_map.record_write(2, (0, 1))
        page_map.record_write(1, (0, 2))  # moved within the block
        live = dict((lpn, page) for page, lpn in
                    [(p, l) for p, l in page_map.live_lpns(0)])
        assert live == {2: 1, 1: 2}

    def test_erase_with_valid_pages_is_a_bug(self, page_map):
        page_map.record_write(5, (3, 0))
        with pytest.raises(RuntimeError):
            page_map.on_erase(3)

    def test_erase_after_migration_ok(self, page_map):
        page_map.record_write(5, (3, 0))
        page_map.record_write(5, (2, 0))
        page_map.on_erase(3)
        assert page_map.valid_pages(3) == 0


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["write", "trim"]),
            st.integers(min_value=0, max_value=15),  # lpn
        ),
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_valid_counts_always_consistent(ops):
    """Property: per-block valid counts equal the number of LPNs whose
    current mapping points into that block, under any op sequence."""
    page_map = PageMap(total_blocks=3, pages_per_block=32)
    next_page = [0, 0, 0]
    for i, (op, lpn) in enumerate(ops):
        if op == "write":
            block = i % 3
            if next_page[block] >= 32:
                continue
            page_map.record_write(lpn, (block, next_page[block]))
            next_page[block] += 1
        else:
            page_map.invalidate(lpn)
    for block in range(3):
        expected = sum(
            1
            for lpn in page_map.all_mapped_lpns()
            if page_map.lookup(lpn)[0] == block
        )
        assert page_map.valid_pages(block) == expected
    assert page_map.mapped_count() == len(page_map.all_mapped_lpns())
