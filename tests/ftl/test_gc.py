"""GC victim selection policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash.block import Block
from repro.flash.cell import CellTechnology, native_mode
from repro.flash.geometry import SMALL_GEOMETRY
from repro.ftl.gc import GcPolicy, select_victim
from repro.ftl.mapping import PageMap


def make_candidates(valid_counts: list[int], rng_seed: int = 0):
    """Blocks fully programmed, with the given number of live pages each."""
    rng = np.random.default_rng(rng_seed)
    page_map = PageMap(total_blocks=len(valid_counts), pages_per_block=8)
    blocks = []
    for b, valid in enumerate(valid_counts):
        block = Block(SMALL_GEOMETRY, native_mode(CellTechnology.TLC), rng)
        for p in range(8):
            block.program(p, b"x")
        for p in range(valid):
            page_map.record_write(b * 100 + p, (b, p))
        blocks.append((b, block))
    return blocks, page_map


class TestGreedy:
    def test_picks_fewest_valid(self):
        candidates, page_map = make_candidates([5, 2, 7])
        assert select_victim(candidates, page_map, GcPolicy.GREEDY) == 1

    def test_skips_fully_valid_blocks(self):
        candidates, page_map = make_candidates([8, 8, 3])
        assert select_victim(candidates, page_map, GcPolicy.GREEDY) == 2

    def test_none_when_everything_fully_valid(self):
        candidates, page_map = make_candidates([8, 8])
        assert select_victim(candidates, page_map, GcPolicy.GREEDY) is None

    def test_skips_retired_blocks(self):
        candidates, page_map = make_candidates([1, 3])
        candidates[0][1].retire()
        assert select_victim(candidates, page_map, GcPolicy.GREEDY) == 1

    def test_empty_candidates(self):
        _, page_map = make_candidates([1])
        assert select_victim([], page_map, GcPolicy.GREEDY) is None


class TestCostBenefit:
    def test_prefers_colder_block_at_equal_utilization(self):
        candidates, page_map = make_candidates([4, 4])
        # block 0's data is older (written at t=0); block 1 written at t=1
        candidates[1][1].advance_time(1.0)
        candidates[1][1].erase()
        for p in range(8):
            candidates[1][1].program(p, b"y")
        for p in range(4):
            page_map.record_write(100 + p, (1, p))
        victim = select_victim(candidates, page_map, GcPolicy.COST_BENEFIT, now_years=2.0)
        assert victim == 0

    def test_prefers_emptier_block_at_equal_age(self):
        candidates, page_map = make_candidates([6, 1])
        victim = select_victim(candidates, page_map, GcPolicy.COST_BENEFIT, now_years=1.0)
        assert victim == 1

    def test_none_when_nothing_reclaimable(self):
        candidates, page_map = make_candidates([8])
        assert select_victim(candidates, page_map, GcPolicy.COST_BENEFIT) is None
