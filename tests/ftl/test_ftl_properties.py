"""Property-based FTL test: random op sequences vs a reference model.

Drives the full FTL (GC, parity, streams) with hypothesis-generated
write/trim/relocate sequences and checks it against a trivially correct
dict model.  SYS is strongly protected, so every readback must be
bit-exact at zero wear; invariants on mapping, stream accounting, and
valid-page counts must hold at every step.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, pseudo_mode
from repro.flash.chip import FlashChip
from repro.flash.geometry import Geometry
from repro.ftl.ftl import Ftl, OutOfSpaceError
from repro.ftl.streams import StreamConfig

GEOM = Geometry(page_size_bytes=512, pages_per_block=8, blocks_per_plane=24,
                planes_per_die=2, dies=1)

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["write", "trim", "rewrite"]),
        st.integers(min_value=0, max_value=25),  # lpn space
        st.integers(min_value=0, max_value=2**32 - 1),  # payload seed
    ),
    max_size=120,
)


def make_ftl() -> Ftl:
    chip = FlashChip(GEOM, CellTechnology.PLC, seed=5)
    streams = [
        StreamConfig("sys", pseudo_mode(CellTechnology.PLC, 4),
                     POLICIES[ProtectionLevel.STRONG]),
    ]
    return Ftl(chip, streams, {"sys": list(range(GEOM.total_blocks))})


@given(ops=op_strategy)
@settings(max_examples=40, deadline=None)
def test_ftl_matches_reference_dict(ops):
    """Readback always equals the last written payload (strong ECC,
    zero wear => bit exactness is required, not probabilistic)."""
    ftl = make_ftl()
    reference: dict[int, bytes] = {}
    payload_bytes = ftl.logical_page_bytes("sys")
    for kind, lpn, seed in ops:
        rng = np.random.default_rng(seed)
        if kind in ("write", "rewrite"):
            payload = rng.bytes(payload_bytes)
            try:
                ftl.write(lpn, payload, "sys")
            except OutOfSpaceError:
                continue
            reference[lpn] = payload
        else:
            ftl.trim(lpn)
            reference.pop(lpn, None)
    # full readback audit
    for lpn, expected in reference.items():
        assert ftl.read(lpn).payload == expected
    # mapping invariants
    assert ftl.page_map.mapped_count() == len(reference)
    assert ftl.stream_live_pages("sys") == len(reference)
    for lpn in range(26):
        if lpn not in reference:
            assert not ftl.page_map.is_mapped(lpn)


@given(ops=op_strategy)
@settings(max_examples=25, deadline=None)
def test_valid_counts_match_mapping_after_any_sequence(ops):
    """Per-block valid counts always equal the number of LPNs mapped
    into the block, GC and parity notwithstanding."""
    ftl = make_ftl()
    payload_bytes = ftl.logical_page_bytes("sys")
    live: set[int] = set()
    for kind, lpn, seed in ops:
        rng = np.random.default_rng(seed)
        if kind in ("write", "rewrite"):
            try:
                ftl.write(lpn, rng.bytes(payload_bytes), "sys")
                live.add(lpn)
            except OutOfSpaceError:
                continue
        else:
            ftl.trim(lpn)
            live.discard(lpn)
        per_block: dict[int, int] = {}
        for check_lpn in live:
            addr = ftl.page_map.lookup(check_lpn)
            assert addr is not None
            per_block[addr[0]] = per_block.get(addr[0], 0) + 1
        for block_index in range(GEOM.total_blocks):
            assert ftl.page_map.valid_pages(block_index) == per_block.get(
                block_index, 0
            )
