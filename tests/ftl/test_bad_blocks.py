"""Block health assessment: retire vs resuscitate (§4.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash.block import Block
from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.error_model import ErrorModel
from repro.flash.geometry import SMALL_GEOMETRY
from repro.ftl.bad_blocks import BlockHealthPolicy, assess_block


def plc_block(pec: int) -> Block:
    block = Block(SMALL_GEOMETRY, native_mode(CellTechnology.PLC), np.random.default_rng(0))
    block.pec = pec
    return block


RESUSCITATION = (
    pseudo_mode(CellTechnology.PLC, 3),
    pseudo_mode(CellTechnology.PLC, 1),
)


class TestHealthy:
    def test_fresh_block_is_healthy(self):
        policy = BlockHealthPolicy(max_rber=4e-4, retention_horizon_years=1.0)
        verdict = assess_block(plc_block(0), policy)
        assert verdict.healthy
        assert verdict.resuscitate_to is None
        assert not verdict.retire

    def test_retired_block_reports_retire(self):
        policy = BlockHealthPolicy(max_rber=4e-4, retention_horizon_years=1.0)
        block = plc_block(0)
        block.retire()
        assert assess_block(block, policy).retire


class TestResuscitation:
    def test_worn_plc_resuscitates_to_pseudo_tlc(self):
        """§4.3: 'flexibly resuscitate worn-out PLC blocks with reduced
        density, e.g. pseudo-TLC'."""
        policy = BlockHealthPolicy(
            max_rber=4e-4, retention_horizon_years=1.0, resuscitation_modes=RESUSCITATION
        )
        # wear past the point native PLC can hold the RBER budget
        model = ErrorModel(native_mode(CellTechnology.PLC))
        worn = int(model.pec_for_rber(4e-4, years_since_write=1.0)) + 50
        verdict = assess_block(plc_block(worn), policy)
        assert not verdict.healthy
        assert verdict.resuscitate_to == pseudo_mode(CellTechnology.PLC, 3)

    def test_extremely_worn_skips_to_pseudo_slc_or_retires(self):
        policy = BlockHealthPolicy(
            max_rber=4e-4, retention_horizon_years=1.0, resuscitation_modes=RESUSCITATION
        )
        model = ErrorModel(pseudo_mode(CellTechnology.PLC, 3))
        worn = int(model.pec_for_rber(4e-4, years_since_write=1.0)) + 100
        verdict = assess_block(plc_block(worn), policy)
        assert not verdict.healthy
        assert verdict.resuscitate_to == pseudo_mode(CellTechnology.PLC, 1) or verdict.retire

    def test_no_ladder_means_retire(self):
        policy = BlockHealthPolicy(max_rber=4e-4, retention_horizon_years=1.0)
        verdict = assess_block(plc_block(100_000), policy)
        assert verdict.retire

    def test_ladder_ignores_non_lower_densities(self):
        """A resuscitation entry at or above current density is skipped."""
        policy = BlockHealthPolicy(
            max_rber=4e-4,
            retention_horizon_years=1.0,
            resuscitation_modes=(native_mode(CellTechnology.PLC),),
        )
        verdict = assess_block(plc_block(100_000), policy)
        assert verdict.retire


class TestThresholdSensitivity:
    def test_tighter_rber_budget_retires_earlier(self):
        """The wear point where a block fails its health check moves
        earlier as the RBER budget tightens."""
        loose = BlockHealthPolicy(max_rber=1e-2, retention_horizon_years=1.0)
        tight = BlockHealthPolicy(max_rber=1e-4, retention_horizon_years=1.0)
        block = plc_block(400)
        assert assess_block(block, loose).healthy
        assert not assess_block(block, tight).healthy

    def test_longer_horizon_is_stricter(self):
        short = BlockHealthPolicy(max_rber=4e-4, retention_horizon_years=0.1)
        long = BlockHealthPolicy(max_rber=4e-4, retention_horizon_years=3.0)
        model = ErrorModel(native_mode(CellTechnology.PLC))
        # a wear point that passes the short horizon but fails the long one
        limit_long = model.pec_for_rber(4e-4, years_since_write=3.0)
        limit_short = model.pec_for_rber(4e-4, years_since_write=0.1)
        assert limit_long < limit_short
        pec = int((limit_long + limit_short) / 2)
        block = plc_block(pec)
        assert assess_block(block, short).healthy
        assert not assess_block(block, long).healthy


class TestInfantMortality:
    def test_zero_rate_kills_nothing(self):
        from repro.ftl.bad_blocks import infant_mortality_deaths

        rng = np.random.default_rng(0)
        assert infant_mortality_deaths(100, 0.0, rng) == []

    def test_deterministic_under_seed(self):
        from repro.ftl.bad_blocks import infant_mortality_deaths

        a = infant_mortality_deaths(200, 0.1, np.random.default_rng(3))
        b = infant_mortality_deaths(200, 0.1, np.random.default_rng(3))
        assert a == b and len(a) > 0

    def test_rate_scales_death_count(self):
        from repro.ftl.bad_blocks import infant_mortality_deaths

        low = len(infant_mortality_deaths(2000, 0.05, np.random.default_rng(1)))
        high = len(infant_mortality_deaths(2000, 0.5, np.random.default_rng(1)))
        assert low < high

    def test_zero_rate_consumes_same_rng_draws(self):
        """Rate 0 must advance the rng exactly like rate > 0, so adding a
        disabled fault class never shifts downstream sampling."""
        from repro.ftl.bad_blocks import infant_mortality_deaths

        rng_a = np.random.default_rng(7)
        infant_mortality_deaths(50, 0.0, rng_a)
        rng_b = np.random.default_rng(7)
        infant_mortality_deaths(50, 0.9, rng_b)
        assert rng_a.random() == rng_b.random()

    def test_empty_population(self):
        from repro.ftl.bad_blocks import infant_mortality_deaths

        assert infant_mortality_deaths(0, 0.5, np.random.default_rng(0)) == []
