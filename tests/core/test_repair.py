"""Cloud backup store semantics."""

from __future__ import annotations

from repro.core.repair import CloudBackup


class TestStoreFetch:
    def test_roundtrip(self):
        backup = CloudBackup()
        backup.store_page(1, b"payload")
        assert backup.fetch_page(1) == b"payload"
        assert backup.stats.pages_fetched == 1

    def test_miss_returns_none_and_counts(self):
        backup = CloudBackup()
        assert backup.fetch_page(42) is None
        assert backup.stats.fetch_misses == 1

    def test_overwrite_replaces(self):
        backup = CloudBackup()
        backup.store_page(1, b"old")
        backup.store_page(1, b"new")
        assert backup.fetch_page(1) == b"new"

    def test_forget(self):
        backup = CloudBackup()
        backup.store_page(1, b"x")
        backup.forget_page(1)
        assert backup.fetch_page(1) is None
        assert len(backup) == 0

    def test_forget_missing_is_noop(self):
        CloudBackup().forget_page(5)


class TestAvailability:
    def test_unavailable_serves_nothing_but_stores(self):
        """§4.3: SOS must not rely on the cloud copy existing/reachable."""
        backup = CloudBackup(available=False)
        backup.store_page(1, b"x")
        assert backup.fetch_page(1) is None
        assert backup.covered(1)  # data is there, just unreachable

    def test_copies_are_immutable_snapshots(self):
        backup = CloudBackup()
        data = bytearray(b"mutable")
        backup.store_page(1, bytes(data))
        data[0] = 0
        assert backup.fetch_page(1) == b"mutable"
