"""Cloud backup store semantics."""

from __future__ import annotations

import pytest

from repro.core.repair import CloudBackup


class TestStoreFetch:
    def test_roundtrip(self):
        backup = CloudBackup()
        backup.store_page(1, b"payload")
        assert backup.fetch_page(1) == b"payload"
        assert backup.stats.pages_fetched == 1

    def test_miss_returns_none_and_counts(self):
        backup = CloudBackup()
        assert backup.fetch_page(42) is None
        assert backup.stats.fetch_misses == 1

    def test_overwrite_replaces(self):
        backup = CloudBackup()
        backup.store_page(1, b"old")
        backup.store_page(1, b"new")
        assert backup.fetch_page(1) == b"new"

    def test_overwrite_counts_separately_from_stores(self):
        # re-uploading an LPN must not inflate the store's footprint
        backup = CloudBackup()
        backup.store_page(1, b"old")
        backup.store_page(1, b"new")
        backup.store_page(2, b"other")
        assert backup.stats.pages_stored == 2
        assert backup.stats.pages_overwritten == 1
        assert len(backup) == 2

    def test_restore_after_forget_is_a_fresh_store(self):
        backup = CloudBackup()
        backup.store_page(1, b"x")
        backup.forget_page(1)
        backup.store_page(1, b"y")
        assert backup.stats.pages_stored == 2
        assert backup.stats.pages_overwritten == 0

    def test_forget(self):
        backup = CloudBackup()
        backup.store_page(1, b"x")
        backup.forget_page(1)
        assert backup.fetch_page(1) is None
        assert len(backup) == 0

    def test_forget_missing_is_noop(self):
        CloudBackup().forget_page(5)


class TestAvailability:
    def test_unavailable_serves_nothing_but_stores(self):
        """§4.3: SOS must not rely on the cloud copy existing/reachable."""
        backup = CloudBackup(available=False)
        backup.store_page(1, b"x")
        assert backup.fetch_page(1) is None
        assert backup.covered(1)  # data is there, just unreachable

    def test_copies_are_immutable_snapshots(self):
        backup = CloudBackup()
        data = bytearray(b"mutable")
        backup.store_page(1, bytes(data))
        data[0] = 0
        assert backup.fetch_page(1) == b"mutable"


class TestOutageSchedule:
    def test_fetches_fail_inside_windows_and_recover_after(self):
        backup = CloudBackup(outage_windows=((0.5, 0.6), (1.0, 1.1)))
        backup.store_page(1, b"x")
        assert backup.fetch_page(1) == b"x"  # before any window
        backup.advance_time(0.55)
        assert backup.in_outage() and not backup.reachable()
        assert backup.fetch_page(1) is None
        assert backup.stats.fetch_outage_failures == 1
        backup.advance_time(0.8)
        assert backup.fetch_page(1) == b"x"  # between windows
        backup.advance_time(1.05)
        assert backup.fetch_page(1) is None  # second window
        assert backup.stats.fetch_outage_failures == 2

    def test_window_end_is_exclusive(self):
        backup = CloudBackup(outage_windows=((0.5, 0.6),))
        backup.advance_time(0.6)
        assert not backup.in_outage()

    def test_clock_is_monotonic(self):
        backup = CloudBackup(outage_windows=((0.5, 0.6),))
        backup.advance_time(0.7)
        backup.advance_time(0.55)  # attempts to rewind are ignored
        assert not backup.in_outage()

    def test_outage_failures_do_not_count_as_misses(self):
        backup = CloudBackup(outage_windows=((0.0, 1.0),))
        backup.store_page(1, b"x")
        backup.fetch_page(1)
        assert backup.stats.fetch_misses == 0
        assert backup.stats.pages_fetched == 0


class TestTransientFailures:
    def test_seeded_failure_sequence_is_reproducible(self):
        def run():
            backup = CloudBackup(transient_failure_rate=0.5, seed=11)
            backup.store_page(1, b"x")
            return [backup.fetch_page(1) for _ in range(32)]

        first, second = run(), run()
        assert first == second
        assert None in first  # some fetches flake ...
        assert b"x" in first  # ... and some succeed

    def test_failures_counted_separately(self):
        backup = CloudBackup(transient_failure_rate=0.5, seed=11)
        backup.store_page(1, b"x")
        for _ in range(32):
            backup.fetch_page(1)
        assert backup.stats.fetch_transient_failures > 0
        assert backup.stats.pages_fetched > 0
        assert (
            backup.stats.fetch_transient_failures + backup.stats.pages_fetched
            == 32
        )

    def test_rate_one_rejected(self):
        with pytest.raises(ValueError, match="transient_failure_rate"):
            CloudBackup(transient_failure_rate=1.0)
