"""Sustainability report assembly and rendering."""

from __future__ import annotations

import pytest

from repro.core.config import default_config
from repro.core.report import build_report, render_report
from repro.core.sos_device import SOSDevice
from repro.flash.geometry import Geometry
from repro.host.files import FileAttributes, FileKind

GEOM = Geometry(page_size_bytes=512, pages_per_block=16, blocks_per_plane=32,
                planes_per_die=2, dies=1)


@pytest.fixture
def device() -> SOSDevice:
    device = SOSDevice(default_config(seed=61, geometry=GEOM))
    for i in range(5):
        device.create_file(
            f"/photos/s{i}", FileKind.PHOTO, 900,
            attributes=FileAttributes(is_screenshot=True, duplicate_count=3),
        )
    device.create_file("/sys/lib", FileKind.OS_SYSTEM, 900)
    device.advance_time(0.5)
    device.run_daemon()
    return device


class TestBuild:
    def test_carbon_saving_is_one_third(self, device):
        report = build_report(device)
        assert report.saved_fraction == pytest.approx(0.325, abs=0.001)
        assert report.saved_vs_tlc_kg > 0

    def test_file_accounting(self, device):
        report = build_report(device)
        assert report.files_total == 6
        assert 0 < report.files_on_spare <= 5

    def test_wear_fractions_bounded(self, device):
        report = build_report(device)
        assert 0.0 <= report.sys_wear_fraction < 1.0
        assert 0.0 <= report.spare_wear_fraction < 1.0

    def test_counts_track_daemon_history(self, device):
        report = build_report(device)
        runs = device.daemon.runs
        assert report.pages_repaired_from_cloud == sum(
            r.scrub.pages_repaired_from_cloud for r in runs
        )
        assert report.trim_episodes == len(device.trim.events)


class TestRender:
    def test_renders_key_sections(self, device):
        text = render_report(build_report(device))
        for fragment in ("carbon", "wear", "degradation management",
                         "integrity", "vs TLC status quo"):
            assert fragment in text

    def test_render_is_multiline_text(self, device):
        text = render_report(build_report(device))
        assert len(text.splitlines()) > 15
