"""Degradation monitor: forecasts, floors, SPARE scoping."""

from __future__ import annotations

import math

import pytest

from repro.core.config import default_config
from repro.core.degradation import DegradationMonitor
from repro.core.partitions import build_partitions
from repro.host.block_layer import BlockLayer
from repro.host.hints import Placement


@pytest.fixture
def setup():
    device = build_partitions(default_config())
    layer = BlockLayer(device.ftl)
    monitor = DegradationMonitor(device.ftl, horizon_years=0.5)
    return device, layer, monitor


class TestScoping:
    def test_sys_pages_not_forecast(self, setup):
        _, layer, monitor = setup
        layer.write_page(1, b"sys data")
        assert monitor.forecast_page(1) is None

    def test_unmapped_pages_not_forecast(self, setup):
        _, _, monitor = setup
        assert monitor.forecast_page(999) is None

    def test_spare_pages_forecast(self, setup):
        _, layer, monitor = setup
        layer.relocate(2, Placement.SPARE)
        layer.write_page(2, b"spare data")
        forecast = monitor.forecast_page(2)
        assert forecast is not None
        assert forecast.lpn == 2
        assert forecast.rber_at_horizon >= forecast.rber_now


class TestForecastShape:
    def test_wear_raises_forecast_rber(self, setup):
        device, layer, monitor = setup
        layer.relocate(3, Placement.SPARE)
        layer.write_page(3, b"d")
        before = monitor.forecast_page(3)
        addr = device.ftl.page_map.lookup(3)
        device.chip.blocks[addr[0]].pec = 600
        after = monitor.forecast_page(3)
        assert after.rber_at_horizon > before.rber_at_horizon
        assert after.quality_at_horizon < before.quality_at_horizon

    def test_quality_is_exponential_proxy(self, setup):
        _, _, monitor = setup
        rber = 1e-4
        assert monitor.quality_from_rber(rber) == pytest.approx(
            math.exp(-monitor.sensitivity * rber)
        )

    def test_rber_floor_inverts_quality(self, setup):
        _, _, monitor = setup
        floor = 0.85
        rber = monitor.rber_floor_for_quality(floor)
        assert monitor.quality_from_rber(rber) == pytest.approx(floor)

    def test_invalid_floor_rejected(self, setup):
        _, _, monitor = setup
        with pytest.raises(ValueError):
            monitor.rber_floor_for_quality(1.0)


class TestEndangered:
    def test_fresh_pages_not_endangered(self, setup):
        _, layer, monitor = setup
        lpns = []
        for i in range(5):
            lpn = 10 + i
            layer.relocate(lpn, Placement.SPARE)
            layer.write_page(lpn, b"x")
            lpns.append(lpn)
        assert monitor.endangered(lpns, quality_floor=0.85) == []

    def test_worn_blocks_flag_pages(self, setup):
        device, layer, monitor = setup
        lpns = []
        for i in range(5):
            lpn = 20 + i
            layer.relocate(lpn, Placement.SPARE)
            layer.write_page(lpn, b"x")
            lpns.append(lpn)
        for block in device.chip.blocks:
            if block.mode.operating_bits == 5:
                block.pec = 1500  # 3x rated PLC endurance
        endangered = monitor.endangered(lpns, quality_floor=0.85)
        assert len(endangered) == 5

    def test_scan_covers_only_spare(self, setup):
        _, layer, monitor = setup
        layer.write_page(30, b"sys")
        layer.relocate(31, Placement.SPARE)
        layer.write_page(31, b"spare")
        forecasts = monitor.scan([30, 31])
        assert [f.lpn for f in forecasts] == [31]
