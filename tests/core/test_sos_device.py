"""SOSDevice facade: composition, carbon, snapshots, file lifecycle."""

from __future__ import annotations

import pytest

from repro.core.config import default_config
from repro.core.sos_device import SOSDevice
from repro.flash.cell import CellTechnology
from repro.carbon.embodied import intensity_kg_per_gb
from repro.host.files import FileAttributes, FileKind


@pytest.fixture
def device() -> SOSDevice:
    return SOSDevice(default_config(seed=6))


class TestComposition:
    def test_streams_exist(self, device):
        assert set(device.ftl.stream_names()) == {"sys", "spare"}

    def test_embodied_carbon_reduction_vs_tlc(self, device):
        """The headline: ~1/3 less embodied carbon than a TLC device of
        the same capacity."""
        carbon = device.embodied_carbon()
        reduction = 1 - carbon.intensity_kg_per_gb / intensity_kg_per_gb(CellTechnology.TLC)
        assert reduction == pytest.approx(0.325, abs=0.001)

    def test_clocks_move_together(self, device):
        device.advance_time(1.0)
        assert device.now_years == 1.0
        assert device.filesystem.now_years == 1.0
        assert device.chip.now_years == 1.0


class TestFileLifecycle:
    def test_create_lands_on_sys(self, device):
        record = device.create_file("/a", FileKind.PHOTO, 500)
        for lpn in record.extents:
            assert device.ftl.stream_of(lpn) == "sys"

    def test_cloud_backed_file_mirrored_to_backup(self, device):
        record = device.create_file(
            "/b", FileKind.VIDEO, 500,
            attributes=FileAttributes(cloud_backed=True),
        )
        for lpn in record.extents:
            assert device.backup.covered(lpn)

    def test_non_backed_file_not_mirrored(self, device):
        record = device.create_file("/c", FileKind.VIDEO, 500)
        for lpn in record.extents:
            assert not device.backup.covered(lpn)

    def test_delete_cleans_backup_and_placement(self, device):
        record = device.create_file(
            "/d", FileKind.VIDEO, 500, attributes=FileAttributes(cloud_backed=True)
        )
        lpns = list(record.extents)
        device.delete_file("/d")
        for lpn in lpns:
            assert not device.backup.covered(lpn)

    def test_readback(self, device):
        device.create_file("/e", FileKind.DOCUMENT, 100, content=lambda o: b"hello")
        pages = device.filesystem.read_file("/e")
        assert pages[0][:5] == b"hello"


class TestSnapshot:
    def test_snapshot_reflects_usage(self, device):
        device.create_file("/a", FileKind.PHOTO, 2000)
        snap = device.snapshot()
        assert snap.used_pages == len(device.filesystem.lookup("/a").extents)
        assert snap.capacity_pages > 0
        assert snap.blocks_retired == 0

    def test_pretrained_models_can_be_injected(self):
        base = SOSDevice(default_config(seed=6))
        other = SOSDevice(
            default_config(seed=7),
            classifier=base.classifier,
            auto_delete=base.auto_delete,
        )
        assert other.classifier is base.classifier

    def test_cloud_availability_flag(self):
        device = SOSDevice(default_config(seed=6), cloud_available=False)
        assert not device.backup.available


class TestFaultPlan:
    def _plan(self, rate=0.3, seed=6):
        from repro.faults import FaultConfig, FaultPlan

        config = FaultConfig(block_infant_mortality=rate, infant_window_days=180)
        return FaultPlan.generate(
            config, seed=seed, horizon_days=365,
            targets={"sys": 8, "spare": 8},
        )

    def test_infant_deaths_applied_as_time_passes(self):
        device = SOSDevice(default_config(seed=6), fault_plan=self._plan())
        assert device.fault_summary.infant_deaths == 0
        device.advance_time(1.0)  # past the whole infant window
        assert device.fault_summary.infant_deaths == len(
            [e for e in device.fault_plan.events if e.kind == "infant_death"]
        )
        assert device.ftl.stats.blocks_retired >= device.fault_summary.infant_deaths

    def test_events_apply_once_across_increments(self):
        device = SOSDevice(default_config(seed=6), fault_plan=self._plan())
        for step in range(1, 13):
            device.advance_time(step / 12)
        total = device.fault_summary.infant_deaths
        device.advance_time(2.0)  # no window events left to apply
        assert device.fault_summary.infant_deaths == total

    def test_no_plan_leaves_no_summary(self):
        device = SOSDevice(default_config(seed=6))
        assert device.fault_plan is None and device.fault_summary is None
        device.advance_time(1.0)  # exercises the early-return path

    def test_plan_outages_gate_the_backup(self):
        from repro.faults import FaultConfig, FaultPlan

        plan = FaultPlan.generate(
            FaultConfig(cloud_outage_rate=0.1, cloud_outage_days=10),
            seed=6, horizon_days=365, targets={"sys": 8, "spare": 8},
        )
        assert plan.outage_windows  # rate high enough to schedule some
        device = SOSDevice(default_config(seed=6), fault_plan=plan)
        start_years, _ = plan.outage_windows_years()[0]
        device.advance_time(start_years + 1e-9)
        assert device.backup.in_outage()
        assert not device.backup.reachable()
