"""SOS configuration validation and derived quantities."""

from __future__ import annotations

import pytest

from repro.core.config import SOSConfig, default_config
from repro.flash.cell import CellTechnology, native_mode, pseudo_mode


class TestDefaults:
    def test_default_is_half_half_plc(self):
        config = default_config()
        assert config.spare_fraction == 0.5
        assert config.technology is CellTechnology.PLC
        assert config.sys_mode == pseudo_mode(CellTechnology.PLC, 4)
        assert config.spare_mode == native_mode(CellTechnology.PLC)

    def test_mean_operating_bits_default_is_4_5(self):
        assert default_config().mean_operating_bits == pytest.approx(4.5)

    def test_spare_wear_leveling_disabled_by_default(self):
        """§4.3: preemptive wear leveling disabled on SPARE."""
        config = default_config()
        assert not config.spare_wear_leveling.enabled
        assert config.sys_wear_leveling.enabled

    def test_trim_target_is_3_percent(self):
        """§4.5: 'once enough space (e.g. 3% of capacity) has been freed'."""
        assert default_config().trim_free_target == pytest.approx(0.03)


class TestValidation:
    def test_degenerate_split_rejected(self):
        with pytest.raises(ValueError):
            default_config(spare_fraction=0.0)
        with pytest.raises(ValueError):
            default_config(spare_fraction=1.0)

    def test_mode_technology_mismatch_rejected(self):
        with pytest.raises(ValueError):
            default_config(sys_mode=native_mode(CellTechnology.QLC))
        with pytest.raises(ValueError):
            default_config(spare_mode=native_mode(CellTechnology.TLC))


class TestHealthPolicies:
    def test_sys_health_has_no_resuscitation(self):
        """SYS never drops density below the capacity plan."""
        assert default_config().sys_health().resuscitation_modes == ()

    def test_spare_health_ladder_is_ptlc_then_pslc(self):
        ladder = default_config().spare_health().resuscitation_modes
        assert [m.operating_bits for m in ladder] == [3, 1]

    def test_spare_budget_tighter_than_sys(self):
        """SPARE has no ECC: its raw-RBER budget must be much smaller."""
        config = default_config()
        assert config.spare_max_rber < config.sys_max_rber
