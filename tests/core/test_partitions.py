"""Partition construction and the paper's density arithmetic (§4.1-§4.2)."""

from __future__ import annotations

import pytest

from repro.core.config import default_config
from repro.core.partitions import build_partitions, capacity_gain_over, density_gain
from repro.flash.cell import CellTechnology, pseudo_mode


class TestDensityArithmetic:
    def test_sos_gains_50_percent_over_tlc(self):
        """§4.2: 'SOS would result in a 50% ... capacity gain over using
        TLC'."""
        assert density_gain(default_config()) == pytest.approx(0.50)

    def test_sos_gains_about_10_percent_over_qlc(self):
        """§4.2 says 10% over QLC; exact arithmetic gives 12.5% (the
        paper rounds down).  We assert the computed value."""
        gain = capacity_gain_over(default_config(), CellTechnology.QLC)
        assert gain == pytest.approx(0.125)

    def test_all_spare_would_gain_66_percent(self):
        config = default_config(spare_fraction=0.99)
        assert density_gain(config) == pytest.approx(2 / 3, abs=0.01)

    def test_gain_interpolates_with_split(self):
        gains = [
            density_gain(default_config(spare_fraction=f)) for f in (0.25, 0.5, 0.75)
        ]
        assert gains == sorted(gains)


class TestPhysicalSplit:
    def test_partitions_cover_chip_disjointly(self):
        device = build_partitions(default_config())
        sys_blocks = set(device.ftl.stream("sys").blocks)
        spare_blocks = set(device.ftl.stream("spare").blocks)
        assert not sys_blocks & spare_blocks
        assert len(sys_blocks | spare_blocks) == device.chip.geometry.total_blocks

    def test_split_fraction_respected(self):
        device = build_partitions(default_config(spare_fraction=0.5))
        total = device.chip.geometry.total_blocks
        assert device.spare_blocks == total // 2

    def test_blocks_operate_in_partition_modes(self):
        device = build_partitions(default_config())
        for i in device.ftl.stream("sys").blocks:
            assert device.chip.blocks[i].mode == pseudo_mode(CellTechnology.PLC, 4)

    def test_spare_blocks_interleaved_not_contiguous(self):
        """Partitions stripe across the chip for parallelism."""
        device = build_partitions(default_config())
        spare = sorted(device.ftl.stream("spare").blocks)
        # not simply the second half of the chip
        assert spare[0] < device.chip.geometry.total_blocks // 2

    def test_uneven_split(self):
        device = build_partitions(default_config(spare_fraction=0.25))
        total = device.chip.geometry.total_blocks
        assert device.spare_blocks == pytest.approx(total * 0.25, abs=1)
