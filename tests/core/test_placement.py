"""Placement engine: hints, conservatism gate, promote/demote flows."""

from __future__ import annotations

import pytest

from repro.core.partitions import build_partitions
from repro.core.config import default_config
from repro.core.placement import PlacementEngine
from repro.host.block_layer import BlockLayer
from repro.host.files import FileAttributes, FileKind, FileRecord
from repro.host.hints import Placement, PlacementHint


@pytest.fixture
def engine():
    device = build_partitions(default_config())
    layer = BlockLayer(device.ftl)
    return PlacementEngine(layer), layer


def make_file(file_id=1, npages=3, layer=None) -> FileRecord:
    record = FileRecord(
        file_id=file_id, path=f"/f{file_id}", kind=FileKind.PHOTO, size_bytes=1000,
        attributes=FileAttributes(),
    )
    if layer is not None:
        for i in range(npages):
            lpn = file_id * 100 + i
            layer.write_page(lpn, b"payload")
            record.extents.append(lpn)
    return record


class TestHints:
    def test_demotion_moves_all_extents(self, engine):
        placement, layer = engine
        record = make_file(layer=layer)
        moved = placement.apply_hint(
            record, PlacementHint(record.file_id, Placement.SPARE, confidence=0.9)
        )
        assert moved
        assert placement.placement_of(record) is Placement.SPARE
        for lpn in record.extents:
            assert layer.ftl.stream_of(lpn) == "spare"
        assert placement.stats.demotions == 1
        assert placement.stats.pages_moved == 3

    def test_low_confidence_demotion_ignored(self, engine):
        """Second conservatism gate (§4.2/§4.3)."""
        placement, layer = engine
        record = make_file(layer=layer)
        moved = placement.apply_hint(
            record, PlacementHint(record.file_id, Placement.SPARE, confidence=0.3)
        )
        assert not moved
        assert placement.placement_of(record) is Placement.SYS
        assert placement.stats.hints_ignored_low_confidence == 1

    def test_same_placement_hint_is_noop(self, engine):
        placement, layer = engine
        record = make_file(layer=layer)
        moved = placement.apply_hint(
            record, PlacementHint(record.file_id, Placement.SYS, confidence=1.0)
        )
        assert not moved

    def test_promotion_always_honoured(self, engine):
        """Rescue promotions ignore the confidence gate."""
        placement, layer = engine
        record = make_file(layer=layer)
        placement.apply_hint(
            record, PlacementHint(record.file_id, Placement.SPARE, confidence=0.9)
        )
        placement.promote(record)
        assert placement.placement_of(record) is Placement.SYS
        for lpn in record.extents:
            assert layer.ftl.stream_of(lpn) == "sys"
        assert placement.stats.promotions == 1

    def test_mismatched_hint_rejected(self, engine):
        placement, layer = engine
        record = make_file(layer=layer)
        with pytest.raises(ValueError):
            placement.apply_hint(record, PlacementHint(999, Placement.SPARE, 0.9))

    def test_forget_resets_to_default(self, engine):
        placement, layer = engine
        record = make_file(layer=layer)
        placement.apply_hint(
            record, PlacementHint(record.file_id, Placement.SPARE, confidence=0.9)
        )
        placement.forget(record)
        assert placement.placement_of(record) is Placement.SYS

    def test_spare_files_filter(self, engine):
        placement, layer = engine
        a = make_file(file_id=1, layer=layer)
        b = make_file(file_id=2, layer=layer)
        placement.apply_hint(a, PlacementHint(1, Placement.SPARE, confidence=0.9))
        assert placement.spare_files([a, b]) == [a]
