"""Trim policy: §4.5's auto-delete fallback."""

from __future__ import annotations

import pytest

from repro.classify.auto_delete import train_auto_delete
from repro.classify.corpus import CorpusConfig, generate_corpus
from repro.core.trim_policy import TrimMode, TrimPolicy
from repro.host.files import FileAttributes, FileKind
from repro.host.filesystem import FileSystem


class ShrinkableBlockLayer:
    """Fake device whose capacity can shrink (worn blocks retiring)."""

    def __init__(self, capacity_pages=200, page_bytes=64):
        self.page_bytes = page_bytes
        self._capacity = capacity_pages
        self.pages = {}

    def write_page(self, lpn, payload, file=None):
        self.pages[lpn] = bytes(payload)

    def read_page(self, lpn):
        return self.pages[lpn]

    def trim_page(self, lpn):
        self.pages.pop(lpn, None)

    def capacity_pages(self):
        return self._capacity

    def shrink(self, pages):
        self._capacity -= pages


@pytest.fixture(scope="module")
def predictor():
    corpus = generate_corpus(CorpusConfig(n_files=2000), seed=31)
    pred, _ = train_auto_delete(corpus, now_years=2.0, seed=31)
    return pred


@pytest.fixture
def fs_with_files(predictor):
    fs = FileSystem(ShrinkableBlockLayer())
    fs.advance_time(2.0)
    # a few keepers and a lot of junk
    for i in range(5):
        fs.create(
            f"/keep{i}", FileKind.PHOTO, 64 * 8,
            attributes=FileAttributes(
                created_years=1.5, last_access_years=2.0, user_favorite=True,
                has_known_faces=True, access_count=100,
            ),
        )
    for i in range(15):
        fs.create(
            f"/junk{i}", FileKind.DOWNLOAD, 64 * 8,
            attributes=FileAttributes(
                created_years=0.1, last_access_years=0.2, duplicate_count=3,
                access_count=1,
            ),
        )
    return fs


class TestTriggering:
    def test_no_pressure_no_action(self, fs_with_files, predictor):
        policy = TrimPolicy(fs_with_files, predictor, free_target=0.03)
        assert policy.enforce() is None
        assert policy.mode is TrimMode.DEGRADATION_ONLY

    def test_capacity_shrink_triggers_trim(self, fs_with_files, predictor):
        """§4.5: worn-out blocks shrink capacity; SOS deletes until ~3%
        of capacity is free, then resumes degradation-only mode."""
        fs = fs_with_files
        policy = TrimPolicy(fs, predictor, free_target=0.03)
        fs.block_layer.shrink(45)  # 200 -> 155, live = 160 pages
        event = policy.enforce()
        assert event is not None
        assert event.files_deleted > 0
        target = policy.headroom_pages_needed()
        assert fs.free_pages() >= target
        assert policy.mode is TrimMode.DEGRADATION_ONLY

    def test_junk_deleted_before_keepers(self, fs_with_files, predictor):
        fs = fs_with_files
        policy = TrimPolicy(fs, predictor, free_target=0.03)
        fs.block_layer.shrink(45)
        policy.enforce()
        live_paths = {r.path for r in fs.live_files()}
        assert all(f"/keep{i}" in live_paths for i in range(5))

    def test_trim_stops_as_soon_as_target_met(self, fs_with_files, predictor):
        fs = fs_with_files
        policy = TrimPolicy(fs, predictor, free_target=0.03)
        fs.block_layer.shrink(45)
        event = policy.enforce()
        # one junk file = 8 pages; deficit 160-155+~4target = ~9 pages
        assert event.files_deleted <= 3

    def test_events_recorded(self, fs_with_files, predictor):
        fs = fs_with_files
        policy = TrimPolicy(fs, predictor, free_target=0.03)
        fs.block_layer.shrink(45)
        policy.enforce()
        assert len(policy.events) == 1
        assert policy.events[0].at_years == 2.0


class TestValidation:
    def test_invalid_target_rejected(self, fs_with_files, predictor):
        with pytest.raises(ValueError):
            TrimPolicy(fs_with_files, predictor, free_target=0.0)
