"""Per-app degradation tolerance (§4.2 future-work feature)."""

from __future__ import annotations

import pytest

from repro.core.config import default_config
from repro.core.sos_device import SOSDevice
from repro.core.tolerance import ToleranceLevel, ToleranceRegistry
from repro.flash.geometry import Geometry
from repro.host.files import FileAttributes, FileKind, FileRecord
from repro.host.hints import Placement, PlacementHint

GEOM = Geometry(page_size_bytes=512, pages_per_block=16, blocks_per_plane=32,
                planes_per_die=2, dies=1)


def make_record(path: str) -> FileRecord:
    return FileRecord(file_id=1, path=path, kind=FileKind.DOCUMENT,
                      size_bytes=100, attributes=FileAttributes())


class TestRegistry:
    def test_longest_prefix_wins(self):
        registry = ToleranceRegistry()
        registry.declare("/data/", "generic", ToleranceLevel.TOLERANT)
        registry.declare("/data/bank/", "bank", ToleranceLevel.INTOLERANT)
        assert registry.level_for(make_record("/data/bank/acct.db")) is (
            ToleranceLevel.INTOLERANT
        )
        assert registry.level_for(make_record("/data/other/x")) is (
            ToleranceLevel.TOLERANT
        )

    def test_unmatched_path_is_default(self):
        registry = ToleranceRegistry.with_defaults()
        assert registry.level_for(make_record("/photos/x.jpg")) is (
            ToleranceLevel.DEFAULT
        )

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            ToleranceRegistry().declare("", "x", ToleranceLevel.DEFAULT)


class TestHintAdjustment:
    def test_intolerant_pins_to_sys(self):
        """The bank app's files never demote, whatever the model says."""
        registry = ToleranceRegistry.with_defaults()
        record = make_record("/data/bank/statement.pdf")
        demote = PlacementHint(1, Placement.SPARE, confidence=0.99)
        adjusted = registry.apply(record, demote)
        assert adjusted.placement is Placement.SYS
        assert adjusted.confidence == 1.0

    def test_tolerant_bypasses_conservatism_gate(self):
        registry = ToleranceRegistry.with_defaults()
        record = make_record("/cache/social/feed42")
        weak_demote = PlacementHint(1, Placement.SPARE, confidence=0.4)
        adjusted = registry.apply(record, weak_demote)
        assert adjusted.placement is Placement.SPARE
        assert adjusted.confidence == 1.0

    def test_tolerant_never_blocks_promotion(self):
        registry = ToleranceRegistry.with_defaults()
        record = make_record("/cache/social/feed42")
        promote = PlacementHint(1, Placement.SYS, confidence=0.9)
        assert registry.apply(record, promote) == promote

    def test_default_passes_through(self):
        registry = ToleranceRegistry.with_defaults()
        record = make_record("/photos/x.jpg")
        hint = PlacementHint(1, Placement.SPARE, confidence=0.7)
        assert registry.apply(record, hint) == hint


class TestEndToEnd:
    def test_daemon_honours_declarations(self):
        device = SOSDevice(default_config(seed=71, geometry=GEOM))
        device.daemon.tolerance = ToleranceRegistry.with_defaults()
        junk_attrs = FileAttributes(is_screenshot=True, duplicate_count=4)
        bank = device.create_file("/data/bank/statement.pdf",
                                  FileKind.DOCUMENT, 900, attributes=junk_attrs)
        social = device.create_file("/cache/social/feed", FileKind.DOWNLOAD,
                                    900, attributes=junk_attrs)
        device.advance_time(0.1)
        device.run_daemon()
        assert device.placement.placement_of(bank) is Placement.SYS
        assert device.placement.placement_of(social) is Placement.SPARE
