"""Scrubber: rescue of endangered SPARE pages, cloud repair, health."""

from __future__ import annotations

import pytest

from repro.core.config import default_config
from repro.core.degradation import DegradationMonitor
from repro.core.partitions import build_partitions
from repro.core.repair import CloudBackup
from repro.core.scrubber import Scrubber
from repro.host.block_layer import BlockLayer
from repro.host.hints import Placement


@pytest.fixture
def setup():
    device = build_partitions(default_config(seed=2))
    layer = BlockLayer(device.ftl)
    monitor = DegradationMonitor(device.ftl, horizon_years=0.5)
    backup = CloudBackup()
    scrubber = Scrubber(layer, monitor, backup, quality_floor=0.85)
    return device, layer, backup, scrubber


def write_spare(layer, lpn, payload=b"payload"):
    layer.relocate(lpn, Placement.SPARE)
    layer.write_page(lpn, payload)


def wear_spare_blocks(device, pec):
    for block in device.chip.blocks:
        if block.mode.operating_bits == 5:
            block.pec = pec


class TestScrub:
    def test_healthy_pages_untouched(self, setup):
        device, layer, backup, scrubber = setup
        lpns = [100 + i for i in range(4)]
        for lpn in lpns:
            write_spare(layer, lpn)
        report = scrubber.scrub(lpns)
        assert report.pages_scanned == 4
        assert report.pages_endangered == 0
        assert report.pages_relocated == 0

    def test_endangered_pages_relocated_without_backup(self, setup):
        device, layer, backup, scrubber = setup
        lpns = [200 + i for i in range(4)]
        for lpn in lpns:
            write_spare(layer, lpn)
        wear_spare_blocks(device, 1500)
        report = scrubber.scrub(lpns)
        assert report.pages_endangered == 4
        assert report.pages_relocated == 4
        assert report.pages_repaired_from_cloud == 0

    def test_cloud_backed_pages_repaired(self, setup):
        device, layer, backup, scrubber = setup
        lpns = [300 + i for i in range(3)]
        for lpn in lpns:
            write_spare(layer, lpn, b"clean!")
            backup.store_page(lpn, b"clean!")
        wear_spare_blocks(device, 1500)
        report = scrubber.scrub(lpns)
        assert report.pages_repaired_from_cloud == 3
        assert report.pages_relocated == 0
        assert backup.stats.pages_fetched == 3

    def test_unavailable_cloud_falls_back_to_relocation(self, setup):
        device, layer, _, _ = setup
        backup = CloudBackup(available=False)
        monitor = DegradationMonitor(device.ftl, horizon_years=0.5)
        scrubber = Scrubber(layer, monitor, backup, quality_floor=0.85)
        write_spare(layer, 400, b"data")
        backup.store_page(400, b"data")
        wear_spare_blocks(device, 1500)
        report = scrubber.scrub([400])
        assert report.pages_repaired_from_cloud == 0
        assert report.pages_relocated == 1

    def test_scrub_triggers_health_actions_on_worn_blocks(self, setup):
        """After rescue, vacated worn blocks retire or resuscitate."""
        device, layer, backup, scrubber = setup
        lpns = [500 + i for i in range(4)]
        for lpn in lpns:
            write_spare(layer, lpn)
        wear_spare_blocks(device, 5000)  # beyond the resuscitation ladder too
        report = scrubber.scrub(lpns)
        assert report.blocks_retired + report.blocks_resuscitated > 0


def _scrubber_with_backup(device, layer, backup, **kwargs):
    monitor = DegradationMonitor(device.ftl, horizon_years=0.5)
    return Scrubber(layer, monitor, backup, quality_floor=0.85, **kwargs)


class TestRepairRetry:
    """Bounded retry + graceful degradation of the cloud repair path."""

    def _endangered_backed_pages(self, device, layer, backup, n=4, base=600):
        lpns = [base + i for i in range(n)]
        for lpn in lpns:
            write_spare(layer, lpn, b"clean!")
            backup.store_page(lpn, b"clean!")
        wear_spare_blocks(device, 1500)
        return lpns

    def test_outage_burns_retries_then_degrades_to_relocation(self, setup):
        device, layer, _, _ = setup
        backup = CloudBackup(outage_windows=((0.0, 10.0),))
        scrubber = _scrubber_with_backup(
            device, layer, backup, max_repair_retries=2, repair_backoff_s=0.5
        )
        lpns = self._endangered_backed_pages(device, layer, backup)
        report = scrubber.scrub(lpns)
        assert report.pages_repaired_from_cloud == 0
        # graceful degradation: every failed repair counted, every page
        # still rescued by relocation -- the sweep keeps simulating
        assert report.repairs_failed == len(lpns)
        assert report.pages_relocated == len(lpns)
        assert report.repair_retries == 2 * len(lpns)

    def test_backoff_is_accounted_not_slept(self, setup):
        device, layer, _, _ = setup
        backup = CloudBackup(outage_windows=((0.0, 10.0),))
        scrubber = _scrubber_with_backup(
            device, layer, backup, max_repair_retries=3, repair_backoff_s=0.5
        )
        lpns = self._endangered_backed_pages(device, layer, backup, n=1)
        import time

        start = time.perf_counter()
        report = scrubber.scrub(lpns)
        elapsed = time.perf_counter() - start
        # exponential: 0.5 + 1.0 + 2.0 simulated seconds, ~none real
        assert report.repair_backoff_s == pytest.approx(3.5)
        assert elapsed < 1.0

    def test_transient_failures_recover_within_retry_budget(self, setup):
        device, layer, _, _ = setup
        backup = CloudBackup(transient_failure_rate=0.5, seed=11)
        scrubber = _scrubber_with_backup(
            device, layer, backup, max_repair_retries=8
        )
        lpns = self._endangered_backed_pages(device, layer, backup)
        report = scrubber.scrub(lpns)
        # rate 0.5 with 8 retries: recovery is near-certain per page, and
        # every endangered page was rescued one way or the other
        assert report.pages_repaired_from_cloud > 0
        assert (
            report.pages_repaired_from_cloud
            + report.repairs_failed
            + (report.pages_relocated - report.repairs_failed)
            == len(lpns)
        )
        assert report.repair_retries > 0

    def test_misses_do_not_burn_the_retry_budget(self, setup):
        device, layer, backup, _ = setup
        scrubber = _scrubber_with_backup(
            device, layer, backup, max_repair_retries=5
        )
        lpns = [700 + i for i in range(3)]
        for lpn in lpns:
            write_spare(layer, lpn)  # endangered but NOT cloud-backed
        wear_spare_blocks(device, 1500)
        report = scrubber.scrub(lpns)
        assert report.repair_retries == 0
        assert report.repairs_failed == 0
        assert report.pages_relocated == len(lpns)

    def test_statically_unavailable_cloud_skips_retries(self, setup):
        device, layer, _, _ = setup
        backup = CloudBackup(available=False)
        scrubber = _scrubber_with_backup(
            device, layer, backup, max_repair_retries=5
        )
        lpns = self._endangered_backed_pages(device, layer, backup)
        report = scrubber.scrub(lpns)
        # retrying a cloud that is configured off can never help
        assert report.repair_retries == 0
        assert report.repairs_failed == len(lpns)
        assert report.pages_relocated == len(lpns)

    def test_negative_retry_budget_rejected(self, setup):
        device, layer, backup, _ = setup
        with pytest.raises(ValueError, match="max_repair_retries"):
            _scrubber_with_backup(device, layer, backup, max_repair_retries=-1)
