"""Scrubber: rescue of endangered SPARE pages, cloud repair, health."""

from __future__ import annotations

import pytest

from repro.core.config import default_config
from repro.core.degradation import DegradationMonitor
from repro.core.partitions import build_partitions
from repro.core.repair import CloudBackup
from repro.core.scrubber import Scrubber
from repro.host.block_layer import BlockLayer
from repro.host.hints import Placement


@pytest.fixture
def setup():
    device = build_partitions(default_config(seed=2))
    layer = BlockLayer(device.ftl)
    monitor = DegradationMonitor(device.ftl, horizon_years=0.5)
    backup = CloudBackup()
    scrubber = Scrubber(layer, monitor, backup, quality_floor=0.85)
    return device, layer, backup, scrubber


def write_spare(layer, lpn, payload=b"payload"):
    layer.relocate(lpn, Placement.SPARE)
    layer.write_page(lpn, payload)


def wear_spare_blocks(device, pec):
    for block in device.chip.blocks:
        if block.mode.operating_bits == 5:
            block.pec = pec


class TestScrub:
    def test_healthy_pages_untouched(self, setup):
        device, layer, backup, scrubber = setup
        lpns = [100 + i for i in range(4)]
        for lpn in lpns:
            write_spare(layer, lpn)
        report = scrubber.scrub(lpns)
        assert report.pages_scanned == 4
        assert report.pages_endangered == 0
        assert report.pages_relocated == 0

    def test_endangered_pages_relocated_without_backup(self, setup):
        device, layer, backup, scrubber = setup
        lpns = [200 + i for i in range(4)]
        for lpn in lpns:
            write_spare(layer, lpn)
        wear_spare_blocks(device, 1500)
        report = scrubber.scrub(lpns)
        assert report.pages_endangered == 4
        assert report.pages_relocated == 4
        assert report.pages_repaired_from_cloud == 0

    def test_cloud_backed_pages_repaired(self, setup):
        device, layer, backup, scrubber = setup
        lpns = [300 + i for i in range(3)]
        for lpn in lpns:
            write_spare(layer, lpn, b"clean!")
            backup.store_page(lpn, b"clean!")
        wear_spare_blocks(device, 1500)
        report = scrubber.scrub(lpns)
        assert report.pages_repaired_from_cloud == 3
        assert report.pages_relocated == 0
        assert backup.stats.pages_fetched == 3

    def test_unavailable_cloud_falls_back_to_relocation(self, setup):
        device, layer, _, _ = setup
        backup = CloudBackup(available=False)
        monitor = DegradationMonitor(device.ftl, horizon_years=0.5)
        scrubber = Scrubber(layer, monitor, backup, quality_floor=0.85)
        write_spare(layer, 400, b"data")
        backup.store_page(400, b"data")
        wear_spare_blocks(device, 1500)
        report = scrubber.scrub([400])
        assert report.pages_repaired_from_cloud == 0
        assert report.pages_relocated == 1

    def test_scrub_triggers_health_actions_on_worn_blocks(self, setup):
        """After rescue, vacated worn blocks retire or resuscitate."""
        device, layer, backup, scrubber = setup
        lpns = [500 + i for i in range(4)]
        for lpn in lpns:
            write_spare(layer, lpn)
        wear_spare_blocks(device, 5000)  # beyond the resuscitation ladder too
        report = scrubber.scrub(lpns)
        assert report.blocks_retired + report.blocks_resuscitated > 0
