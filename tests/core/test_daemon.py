"""Classifier daemon: periodic review, re-evaluation, full pipeline."""

from __future__ import annotations

import pytest

from repro.core.sos_device import SOSDevice
from repro.core.config import default_config
from repro.host.files import FileAttributes, FileKind


@pytest.fixture
def device() -> SOSDevice:
    return SOSDevice(default_config(seed=4))


def add_junk_photo(device, name, cloud=False):
    return device.create_file(
        f"/photos/{name}", FileKind.PHOTO, size_bytes=900,
        attributes=FileAttributes(
            created_years=device.now_years, last_access_years=device.now_years,
            is_screenshot=True, duplicate_count=3, cloud_backed=cloud,
        ),
    )


def add_keeper(device, name):
    return device.create_file(
        f"/photos/{name}", FileKind.PHOTO, size_bytes=900,
        attributes=FileAttributes(
            created_years=device.now_years, last_access_years=device.now_years,
            user_favorite=True, has_known_faces=True, access_count=150,
        ),
    )


class TestReview:
    def test_first_run_reviews_everything(self, device):
        for i in range(6):
            add_junk_photo(device, f"junk{i}")
        report = device.run_daemon()
        assert report.files_reviewed == 6

    def test_second_run_skips_recently_reviewed(self, device):
        add_junk_photo(device, "a")
        device.run_daemon()
        report = device.run_daemon()
        assert report.files_reviewed == 0

    def test_reevaluation_after_period(self, device):
        add_junk_photo(device, "a")
        device.run_daemon()
        device.advance_time(device.daemon.reevaluate_period_years + 0.01)
        report = device.run_daemon()
        assert report.files_reviewed == 1

    def test_new_files_reviewed_next_run(self, device):
        add_junk_photo(device, "a")
        device.run_daemon()
        add_junk_photo(device, "b")
        report = device.run_daemon()
        assert report.files_reviewed == 1


class TestPipeline:
    def test_junk_demoted_keepers_stay(self, device):
        for i in range(4):
            add_junk_photo(device, f"junk{i}")
        keeper = add_keeper(device, "wedding")
        device.advance_time(0.05)
        device.run_daemon()
        from repro.host.hints import Placement

        assert device.placement.placement_of(keeper) is Placement.SYS
        snapshot = device.snapshot()
        assert snapshot.spare_file_count >= 3

    def test_os_files_never_demoted(self, device):
        record = device.create_file(
            "/system/kernel", FileKind.OS_SYSTEM, size_bytes=900,
        )
        device.run_daemon()
        from repro.host.hints import Placement

        assert device.placement.placement_of(record) is Placement.SYS

    def test_scrub_rescues_worn_spare_data(self, device):
        for i in range(4):
            add_junk_photo(device, f"junk{i}", cloud=True)
        device.advance_time(0.05)
        device.run_daemon()  # demote to spare
        # wear out all spare blocks
        for block in device.chip.blocks:
            if block.mode.operating_bits == 5:
                block.pec = 1500
        report = device.run_daemon()
        assert report.scrub.pages_endangered > 0
        rescued = (
            report.scrub.pages_repaired_from_cloud + report.scrub.pages_relocated
        )
        assert rescued == report.scrub.pages_endangered

    def test_runs_are_recorded(self, device):
        device.run_daemon()
        device.run_daemon()
        assert len(device.daemon.runs) == 2
