"""Carbon-credit pricing: the §3 40%-surcharge example."""

from __future__ import annotations

import pytest

from repro.carbon.credits import (
    EU_ETS_PEAK_2022,
    CarbonPrice,
    credit_cost_per_tb,
    price_increase_fraction,
)


class TestPricing:
    def test_eu_peak_value(self):
        assert EU_ETS_PEAK_2022.usd_per_tonne == 111.0
        assert EU_ETS_PEAK_2022.usd_per_kg == pytest.approx(0.111)

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            CarbonPrice(usd_per_tonne=-1)

    def test_credit_cost_per_tb(self):
        """$111/t * 0.16 kg/GB * 1000 GB = $17.76 per TB."""
        assert credit_cost_per_tb(EU_ETS_PEAK_2022) == pytest.approx(17.76)

    def test_paper_example_40_percent(self):
        """§3: at $45/TB QLC, the credit is ~a 40% price increase."""
        fraction = price_increase_fraction(EU_ETS_PEAK_2022, ssd_usd_per_tb=45.0)
        assert fraction == pytest.approx(0.40, abs=0.02)

    def test_scales_linearly_with_price(self):
        double = CarbonPrice(usd_per_tonne=222.0)
        assert credit_cost_per_tb(double) == pytest.approx(2 * credit_cost_per_tb(EU_ETS_PEAK_2022))

    def test_denser_flash_pays_less_credit(self):
        from repro.carbon.embodied import intensity_kg_per_gb
        from repro.flash.cell import CellTechnology

        tlc = credit_cost_per_tb(EU_ETS_PEAK_2022, intensity_kg_per_gb(CellTechnology.TLC))
        plc = credit_cost_per_tb(EU_ETS_PEAK_2022, intensity_kg_per_gb(CellTechnology.PLC))
        assert plc == pytest.approx(tlc * 3 / 5)

    def test_invalid_ssd_price_rejected(self):
        with pytest.raises(ValueError):
            price_increase_fraction(EU_ETS_PEAK_2022, ssd_usd_per_tb=0.0)
