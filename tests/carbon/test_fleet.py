"""Fleet replacement simulation (§2.3.2-§2.3.3)."""

from __future__ import annotations

import pytest

from repro.carbon.fleet import FleetConfig, simulate_fleet


@pytest.fixture(scope="module")
def outcome():
    return simulate_fleet(FleetConfig())


class TestReplacementArithmetic:
    def test_all_classes_present(self, outcome):
        names = {c.name for c in outcome.classes}
        assert names == {"smartphone", "ssd", "memory_card", "tablet", "other"}

    def test_personal_multiplier_exceeds_3x(self, outcome):
        """§2.3.2: personal flash replaced over three times per decade."""
        assert outcome.personal_replacement_multiplier() > 3.0

    def test_smartphones_churn_fastest(self, outcome):
        by_name = {c.name: c.replacement_multiplier for c in outcome.classes}
        assert by_name["smartphone"] == max(by_name.values())

    def test_manufactured_exceeds_installed_growth(self, outcome):
        """Replacement means manufacturing far exceeds net base growth."""
        for c in outcome.classes:
            net_growth = c.installed_eb_end - c.installed_eb_start
            assert c.manufactured_eb > net_growth

    def test_personal_bit_share_majority(self, outcome):
        assert outcome.personal_bit_share() > 0.5

    def test_embodied_total_consistent(self, outcome):
        expected = outcome.total_manufactured_eb * 1e9 * 0.16 / 1e9
        assert outcome.total_embodied_mt == pytest.approx(expected)


class TestConfigSensitivity:
    def test_zero_growth_isolates_replacement(self):
        outcome = simulate_fleet(FleetConfig(demand_growth=0.0))
        phone = next(c for c in outcome.classes if c.name == "smartphone")
        # pure replacement: 10 years / 2.5-year life = 4 rebuilds
        assert phone.replacement_multiplier == pytest.approx(4.0)
        assert phone.installed_eb_end == pytest.approx(phone.installed_eb_start)

    def test_shorter_horizon_less_churn(self):
        short = simulate_fleet(FleetConfig(horizon_years=5))
        long = simulate_fleet(FleetConfig(horizon_years=10))
        assert short.total_manufactured_eb < long.total_manufactured_eb

    def test_greener_intensity_scales_carbon(self):
        base = simulate_fleet(FleetConfig())
        green = simulate_fleet(FleetConfig(intensity_kg_per_gb=0.08))
        assert green.total_embodied_mt == pytest.approx(base.total_embodied_mt / 2)
