"""Figure 1 market shares and the replacement-rate arithmetic of §2.3."""

from __future__ import annotations

import pytest

from repro.carbon.market import (
    DEVICE_CLASSES,
    MARKET_SHARE_2020,
    decade_production_multiplier,
    personal_share,
    replacements_per_decade,
)


class TestFigure1:
    def test_shares_sum_to_one(self):
        assert sum(MARKET_SHARE_2020.values()) == pytest.approx(1.0)

    def test_smartphone_dominates(self):
        """Figure 1: smartphones are the largest segment (38%)."""
        assert MARKET_SHARE_2020["smartphone"] == pytest.approx(0.38)
        assert MARKET_SHARE_2020["smartphone"] == max(MARKET_SHARE_2020.values())

    def test_ssd_share(self):
        """§2.3.2: 'full-fledged SSDs ... comprise only 32%'."""
        assert MARKET_SHARE_2020["ssd"] == pytest.approx(0.32)

    def test_personal_share_is_about_half(self):
        """§2.3.2: personal devices are 'approximately half' of bits."""
        assert 0.4 <= personal_share(include_memory_cards=False) <= 0.55
        assert 0.5 <= personal_share(include_memory_cards=True) <= 0.65


class TestReplacement:
    def test_smartphone_life_two_to_three_years(self):
        """§2.3.2: 'the average smartphone use life is two to three years'."""
        assert 2.0 <= DEVICE_CLASSES["smartphone"].replacement_years <= 3.0

    def test_personal_devices_replaced_at_least_3x_per_decade(self):
        """§2.3.2 conclusion: over half of bits 'discarded and replaced
        over three times in the coming decade'."""
        multipliers = decade_production_multiplier()
        weighted = sum(
            MARKET_SHARE_2020[name] * multipliers[name]
            for name in ("smartphone", "tablet")
        ) / (MARKET_SHARE_2020["smartphone"] + MARKET_SHARE_2020["tablet"])
        assert weighted >= 3.0

    def test_ssds_replaced_less_often(self):
        assert replacements_per_decade(DEVICE_CLASSES["ssd"]) < replacements_per_decade(
            DEVICE_CLASSES["smartphone"]
        )

    def test_flash_reuse_probability_is_zero(self):
        """§2.3.3: flash packages are almost never re-used."""
        for device in DEVICE_CLASSES.values():
            assert device.flash_reuse_probability == 0.0
