"""Embodied carbon arithmetic: the paper's density-to-carbon pipeline."""

from __future__ import annotations

import pytest

from repro.carbon.embodied import (
    BASELINE_INTENSITY_KG_PER_GB,
    device_embodied_kg,
    intensity_kg_per_gb,
    mixed_intensity_kg_per_gb,
)
from repro.flash.cell import CellTechnology, native_mode, pseudo_mode


class TestIntensity:
    def test_tlc_is_the_baseline(self):
        assert intensity_kg_per_gb(CellTechnology.TLC) == BASELINE_INTENSITY_KG_PER_GB

    def test_qlc_is_three_quarters_of_tlc(self):
        ratio = intensity_kg_per_gb(CellTechnology.QLC) / intensity_kg_per_gb(
            CellTechnology.TLC
        )
        assert ratio == pytest.approx(3 / 4)

    def test_plc_is_three_fifths_of_tlc(self):
        ratio = intensity_kg_per_gb(CellTechnology.PLC) / intensity_kg_per_gb(
            CellTechnology.TLC
        )
        assert ratio == pytest.approx(3 / 5)

    def test_pseudo_qlc_on_plc_matches_native_qlc(self):
        """Intensity keys on operating (shipped) bits per cell."""
        assert intensity_kg_per_gb(pseudo_mode(CellTechnology.PLC, 4)) == intensity_kg_per_gb(
            CellTechnology.QLC
        )

    def test_denser_is_always_greener(self):
        intensities = [intensity_kg_per_gb(t) for t in CellTechnology]
        assert intensities == sorted(intensities, reverse=True)


class TestMixed:
    def test_sos_split_intensity(self):
        """50/50 PLC + pseudo-QLC: 4.5 bits/cell avg -> 2/3 of TLC
        intensity (the flip side of the +50% density headline)."""
        sos = mixed_intensity_kg_per_gb(
            {
                native_mode(CellTechnology.PLC): 0.5,
                pseudo_mode(CellTechnology.PLC, 4): 0.5,
            }
        )
        # capacity-weighted: 0.5*(0.16*3/5) + 0.5*(0.16*3/4) = 0.108
        assert sos == pytest.approx(0.108)
        reduction = 1 - sos / intensity_kg_per_gb(CellTechnology.TLC)
        assert reduction == pytest.approx(0.325, abs=0.001)

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            mixed_intensity_kg_per_gb({native_mode(CellTechnology.TLC): 0.9})

    def test_single_technology_mix_is_identity(self):
        mix = mixed_intensity_kg_per_gb({CellTechnology.QLC: 1.0})
        assert mix == intensity_kg_per_gb(CellTechnology.QLC)


class TestDeviceCarbon:
    def test_total_kg(self):
        device = device_embodied_kg(128.0, {CellTechnology.TLC: 1.0})
        assert device.total_kg == pytest.approx(128 * 0.16)

    def test_reduction_vs(self):
        tlc = device_embodied_kg(64.0, {CellTechnology.TLC: 1.0})
        sos = device_embodied_kg(
            64.0,
            {
                native_mode(CellTechnology.PLC): 0.5,
                pseudo_mode(CellTechnology.PLC, 4): 0.5,
            },
        )
        assert sos.reduction_vs(tlc) == pytest.approx(0.325, abs=0.001)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            device_embodied_kg(0.0, {CellTechnology.TLC: 1.0})
