"""2021->2030 projection against the paper's §1/§3 figures."""

from __future__ import annotations

import pytest

from repro.carbon.projection import ProjectionConfig, people_equivalent, project


@pytest.fixture(scope="module")
def points():
    return project()


class TestBaseYear:
    def test_2021_capacity(self, points):
        """§1: 'flash annual capacity production in 2021 reached ~765 EB'."""
        assert points[0].year == 2021
        assert points[0].capacity_eb == pytest.approx(765.0)

    def test_2021_emissions_122_mt(self, points):
        """§1: 'flash production-related carbon emissions were ~122M
        metric tonnes of CO2'."""
        assert points[0].emissions_mt == pytest.approx(122.4, rel=0.01)

    def test_2021_people_equivalent_28m(self, points):
        """§1: 'equivalent to the average annual CO2 emissions of 28M
        people'."""
        assert points[0].people_equivalent_millions == pytest.approx(28.0, rel=0.05)


class TestEndYear:
    def test_2030_people_equivalent_over_150m(self, points):
        """§1: 'by 2030, this figure will have reached the equivalent of
        over 150M people'."""
        assert points[-1].year == 2030
        assert points[-1].people_equivalent_millions > 150.0

    def test_2030_share_near_1_7_percent(self, points):
        """Abstract: flash manufacturing 'will account for 1.7% of carbon
        emissions in the world' by 2030."""
        assert points[-1].share_of_world_2030 == pytest.approx(0.017, abs=0.003)

    def test_capacity_grows_monotonically(self, points):
        caps = [p.capacity_eb for p in points]
        assert caps == sorted(caps)

    def test_intensity_declines_monotonically(self, points):
        intensities = [p.intensity_kg_per_gb for p in points]
        assert intensities == sorted(intensities, reverse=True)

    def test_intensity_halves_by_2030(self, points):
        assert points[-1].intensity_kg_per_gb == pytest.approx(0.08, rel=0.01)


class TestConfig:
    def test_emissions_grow_despite_density_gains(self, points):
        """§3's thesis: demand growth outruns density improvement."""
        emissions = [p.emissions_mt for p in points]
        assert emissions == sorted(emissions)

    def test_custom_window(self):
        pts = project(ProjectionConfig(base_year=2021, end_year=2021))
        assert len(pts) == 1

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            project(ProjectionConfig(base_year=2030, end_year=2021))

    def test_people_equivalent_helper(self):
        assert people_equivalent(4.4) == pytest.approx(1.0)
