"""Use-phase energy model (§1/§3 premise)."""

from __future__ import annotations

import pytest

from repro.carbon.operational import (
    GRID_KG_PER_KWH,
    POWER_PROFILES,
    PowerProfile,
    use_phase,
)


class TestPowerProfiles:
    def test_mean_watts_between_idle_and_active(self):
        for profile in POWER_PROFILES.values():
            powered_mean = profile.mean_watts() / profile.powered_fraction
            assert profile.idle_w <= powered_mean <= profile.active_w

    def test_mobile_is_the_frugal_class(self):
        means = {name: p.mean_watts() for name, p in POWER_PROFILES.items()}
        assert means["mobile_ufs"] == min(means.values())
        assert means["enterprise_ssd"] == max(means.values())

    def test_profile_mean_formula(self):
        profile = PowerProfile("x", active_w=10.0, idle_w=0.0, duty_cycle=0.5,
                               powered_fraction=0.5)
        assert profile.mean_watts() == pytest.approx(2.5)


class TestUsePhase:
    def test_energy_scales_with_service_years(self):
        short = use_phase("mobile_ufs", 64.0, 1.0)
        long = use_phase("mobile_ufs", 64.0, 4.0)
        assert long.energy_kwh == pytest.approx(4 * short.energy_kwh)

    def test_embodied_scales_with_capacity(self):
        small = use_phase("mobile_ufs", 64.0, 2.5)
        large = use_phase("mobile_ufs", 256.0, 2.5)
        assert large.embodied_kg == pytest.approx(4 * small.embodied_kg)
        assert large.operational_kg == pytest.approx(small.operational_kg)

    def test_operational_carbon_uses_grid_intensity(self):
        phase = use_phase("consumer_ssd", 500.0, 5.0)
        assert phase.operational_kg == pytest.approx(
            phase.energy_kwh * GRID_KG_PER_KWH
        )

    def test_greener_grid_reduces_operational_only(self):
        dirty = use_phase("enterprise_ssd", 1000.0, 5.0, grid_kg_per_kwh=0.8)
        clean = use_phase("enterprise_ssd", 1000.0, 5.0, grid_kg_per_kwh=0.1)
        assert clean.operational_kg < dirty.operational_kg
        assert clean.embodied_kg == dirty.embodied_kg
        assert clean.embodied_share > dirty.embodied_share

    def test_embodied_dominates_mobile(self):
        """The §1 premise that motivates SOS."""
        phase = use_phase("mobile_ufs", 128.0, 2.5)
        assert phase.embodied_to_operational > 10.0
        assert phase.embodied_share > 0.9

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            use_phase("mobile_ufs", 0.0, 2.5)
        with pytest.raises(ValueError):
            use_phase("mobile_ufs", 64.0, -1.0)
        with pytest.raises(KeyError):
            use_phase("floppy", 1.0, 1.0)
