"""Terminal chart helpers."""

from __future__ import annotations

import pytest

from repro.analysis.charts import bar_chart, series_chart, sparkline


class TestBarChart:
    def test_renders_all_labels(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0])
        assert "a " in out and "bb" in out

    def test_largest_value_gets_longest_bar(self):
        out = bar_chart(["small", "large"], [1.0, 4.0], width=8)
        lines = out.splitlines()
        assert lines[1].count("█") > lines[0].count("█")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_input(self):
        assert bar_chart([], [], title="t") == "t"

    def test_zero_values_safe(self):
        out = bar_chart(["a", "b"], [0.0, 0.0])
        assert "█" not in out

    def test_title_and_unit(self):
        out = bar_chart(["x"], [5.0], title="shares", unit="%")
        assert out.startswith("shares")
        assert "5%" in out


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_glyphs(self):
        glyphs = sparkline([0, 1, 2, 3, 4, 5])
        assert list(glyphs) == sorted(glyphs, key=lambda g: " ▁▂▃▄▅▆▇█".index(g))

    def test_constant_series(self):
        out = sparkline([2.0, 2.0, 2.0])
        assert len(set(out)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_bounds_clamp(self):
        out = sparkline([100.0], lo=0.0, hi=1.0)
        assert out == "█"


class TestSeriesChart:
    def test_endpoints_annotated(self):
        out = series_chart("x", [2021, 2030], [122.0, 695.0], unit="Mt")
        assert "2021" in out and "2030" in out
        assert "122" in out and "695" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            series_chart("x", [1], [1, 2])

    def test_empty_series(self):
        assert "empty" in series_chart("x", [], [])
