"""Experiment registry consistency with the benchmark tree."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.registry import EXPERIMENTS, find_experiment

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRegistry:
    def test_ids_unique(self):
        ids = [e.experiment_id for e in EXPERIMENTS]
        assert len(set(ids)) == len(ids)

    def test_every_bench_file_exists(self):
        for experiment in EXPERIMENTS:
            assert (REPO_ROOT / experiment.bench_path).is_file(), experiment

    def test_every_bench_file_is_registered(self):
        registered = {e.bench_path for e in EXPERIMENTS}
        on_disk = {
            f"benchmarks/{p.name}"
            for p in (REPO_ROOT / "benchmarks").glob("test_bench_*.py")
        }
        assert on_disk == registered

    def test_find_experiment(self):
        assert find_experiment("e11").title.startswith("SOS vs baselines")
        with pytest.raises(KeyError):
            find_experiment("E99")


class TestUfsFacade:
    def test_sos_device_as_ufs(self):
        from repro.core.config import default_config
        from repro.core.sos_device import SOSDevice

        device = SOSDevice(default_config(seed=81))
        ufs = device.as_ufs()
        descriptors = ufs.luns()
        assert descriptors[0].name == "system"
        assert descriptors[0].reliable_writes
        assert descriptors[1].name == "userdata"
        assert not descriptors[1].reliable_writes
        ufs.write(0, 12345, b"boot")
        assert ufs.read(0, 12345)[:4] == b"boot"
