"""Reporting helpers and claim checks."""

from __future__ import annotations

import pytest

from repro.analysis.claims import ClaimCheck, Comparison, claims_table
from repro.analysis.reporting import format_series, format_table


class TestTable:
    def test_headers_and_rows_render(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", 0.000123]], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "b" in lines[1]
        assert "1.230e-04" in out

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out

    def test_series_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            format_series("s", [1, 2], [1])

    def test_series_renders_pairs(self):
        out = format_series("s", [1.0, 2.0], [10.0, 20.0])
        assert "series: s" in out
        assert "10" in out and "20" in out


class TestClaims:
    def test_approx_within_tolerance(self):
        check = ClaimCheck("c1", "x", paper_value=100.0, measured=110.0, rel_tol=0.15)
        assert check.holds

    def test_approx_outside_tolerance(self):
        check = ClaimCheck("c1", "x", paper_value=100.0, measured=130.0, rel_tol=0.15)
        assert not check.holds

    def test_at_least(self):
        assert ClaimCheck("c", "x", 150.0, 158.0, Comparison.AT_LEAST).holds
        assert not ClaimCheck("c", "x", 150.0, 149.0, Comparison.AT_LEAST).holds

    def test_at_most(self):
        assert ClaimCheck("c", "x", 0.05, 0.04, Comparison.AT_MOST).holds

    def test_between(self):
        check = ClaimCheck(
            "c", "x", 6.0, 8.0, Comparison.BETWEEN, paper_upper=10.0
        )
        assert check.holds
        assert not ClaimCheck(
            "c", "x", 6.0, 11.0, Comparison.BETWEEN, paper_upper=10.0
        ).holds

    def test_between_requires_upper(self):
        check = ClaimCheck("c", "x", 6.0, 8.0, Comparison.BETWEEN)
        with pytest.raises(ValueError):
            _ = check.holds

    def test_claims_table_renders_verdicts(self):
        checks = [
            ClaimCheck("ok", "good claim", 1.0, 1.0),
            ClaimCheck("bad", "bad claim", 1.0, 5.0),
        ]
        out = claims_table(checks)
        assert "OK" in out
        assert "DIVERGES" in out

    def test_paper_text_prefixes(self):
        assert ClaimCheck("c", "x", 5.0, 5.0).paper_text == "~5"
        assert ClaimCheck("c", "x", 5.0, 5.0, Comparison.AT_LEAST).paper_text == ">=5"
