"""FaultPlan: deterministic generation, lookups, digests, config round-trip."""

from __future__ import annotations

import pytest

from repro.faults import FaultConfig, FaultPlan
from repro.faults.plan import CLOUD_TARGET, _merge_windows

RICH = FaultConfig(
    block_infant_mortality=0.2,
    infant_window_days=30,
    transient_read_rate=0.5,
    power_loss_rate=0.2,
    cloud_outage_rate=0.05,
    cloud_outage_days=4,
)
TARGETS = {"sys": 12, "spare": 20}


def _plan(seed: int = 9, config: FaultConfig = RICH) -> FaultPlan:
    return FaultPlan.generate(config, seed=seed, horizon_days=365, targets=TARGETS)


class TestGeneration:
    def test_same_inputs_same_schedule(self):
        a, b = _plan(), _plan()
        assert a.event_log() == b.event_log()
        assert a.digest() == b.digest()

    def test_seed_changes_schedule(self):
        assert _plan(seed=9).digest() != _plan(seed=10).digest()

    def test_config_changes_digest_even_with_empty_schedule(self):
        # digest covers the inputs, not just the sampled events
        a = FaultPlan.generate(FaultConfig(), seed=1, horizon_days=10, targets=TARGETS)
        b = FaultPlan.generate(
            FaultConfig(max_read_retries=5), seed=1, horizon_days=10, targets=TARGETS
        )
        assert a.empty and b.empty
        assert a.digest() != b.digest()

    def test_zero_config_is_empty(self):
        plan = FaultPlan.generate(FaultConfig(), seed=3, horizon_days=365,
                                  targets=TARGETS)
        assert plan.empty and len(plan) == 0
        assert plan.outage_windows == ()
        assert not any(plan.in_cloud_outage(d) for d in range(365))

    def test_rich_config_populates_every_kind(self):
        kinds = {e.kind for e in _plan().events}
        assert kinds == {"infant_death", "transient_read", "torn_program",
                         "cloud_outage"}

    def test_infant_deaths_respect_window(self):
        for event in _plan().events:
            if event.kind == "infant_death":
                assert 0 <= event.day < RICH.infant_window_days
                assert event.unit < TARGETS[event.target]

    def test_events_sorted_by_day(self):
        days = [e.day for e in _plan().events]
        assert days == sorted(days)

    def test_reserved_cloud_target_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            FaultPlan.generate(RICH, seed=0, horizon_days=10,
                               targets={CLOUD_TARGET: 4})

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon_days"):
            FaultPlan.generate(RICH, seed=0, horizon_days=0, targets=TARGETS)


class TestLookups:
    def test_per_day_lookups_cover_all_events(self):
        plan = _plan()
        recovered = 0
        for day in range(plan.horizon_days):
            recovered += len(plan.infant_deaths(day))
            recovered += len(plan.transient_reads(day))
            recovered += len(plan.torn_programs(day))
        outages = sum(1 for e in plan.events if e.kind == "cloud_outage")
        assert recovered + outages == len(plan)

    def test_outage_days_marked(self):
        plan = _plan()
        for start, end in plan.outage_windows:
            assert plan.in_cloud_outage(start)
            assert plan.in_cloud_outage(end - 1)
            assert not plan.in_cloud_outage(end)

    def test_outage_windows_merge_overlaps(self):
        assert _merge_windows([(5, 8), (7, 10), (20, 22)]) == ((5, 10), (20, 22))

    def test_outage_windows_in_years(self):
        plan = _plan()
        for (d0, d1), (y0, y1) in zip(plan.outage_windows,
                                      plan.outage_windows_years()):
            assert y0 == pytest.approx(d0 / 365.0)
            assert y1 == pytest.approx(d1 / 365.0)


class TestConfig:
    def test_params_roundtrip(self):
        assert FaultConfig.from_params(RICH.to_params()) == RICH

    def test_params_are_cache_keyable(self):
        from repro.runner import stable_key

        assert stable_key(RICH.to_params()) == stable_key(RICH.to_params())

    def test_is_zero(self):
        assert FaultConfig().is_zero
        assert not RICH.is_zero

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultConfig(transient_read_rate=-0.1)

    def test_infant_mortality_must_be_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultConfig(block_infant_mortality=1.5)
