"""File system semantics over a fake block layer, incl. capacity variance."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host.files import FileKind
from repro.host.filesystem import FileSystem, FsFullError


class FakeBlockLayer:
    """In-memory block layer with an adjustable capacity."""

    def __init__(self, capacity_pages=100, page_bytes=64):
        self.page_bytes = page_bytes
        self._capacity = capacity_pages
        self.pages: dict[int, bytes] = {}
        self.trims: list[int] = []

    def write_page(self, lpn, payload, file=None):
        self.pages[lpn] = bytes(payload)

    def read_page(self, lpn):
        return self.pages[lpn]

    def trim_page(self, lpn):
        self.pages.pop(lpn, None)
        self.trims.append(lpn)

    def capacity_pages(self):
        return self._capacity

    def shrink(self, pages):
        self._capacity -= pages


@pytest.fixture
def fs() -> FileSystem:
    return FileSystem(FakeBlockLayer())


class TestCreateDelete:
    def test_create_allocates_whole_pages(self, fs):
        record = fs.create("/a", FileKind.PHOTO, size_bytes=130)
        assert len(record.extents) == 3  # ceil(130/64)
        assert fs.used_pages() == 3

    def test_create_zero_byte_file_takes_one_page(self, fs):
        record = fs.create("/z", FileKind.DOCUMENT, size_bytes=0)
        assert len(record.extents) == 1

    def test_duplicate_path_rejected(self, fs):
        fs.create("/a", FileKind.PHOTO, 10)
        with pytest.raises(FileExistsError):
            fs.create("/a", FileKind.PHOTO, 10)

    def test_delete_trims_pages_and_frees_space(self, fs):
        record = fs.create("/a", FileKind.PHOTO, 130)
        lpns = list(record.extents)
        fs.delete("/a")
        assert fs.used_pages() == 0
        assert fs.block_layer.trims == lpns
        with pytest.raises(FileNotFoundError):
            fs.lookup("/a")

    def test_lpns_are_reused_after_delete(self, fs):
        first = fs.create("/a", FileKind.PHOTO, 64)
        lpn = first.extents[0]
        fs.delete("/a")
        second = fs.create("/b", FileKind.PHOTO, 64)
        assert second.extents[0] == lpn

    def test_content_callback_writes_pages(self, fs):
        fs.create("/c", FileKind.PHOTO, 128, content=lambda o: bytes([o]) * 10)
        pages = fs.read_file("/c")
        assert pages[0][:10] == b"\x00" * 10
        assert pages[1][:10] == b"\x01" * 10


class TestIO:
    def test_read_touches_access_metadata(self, fs):
        fs.create("/a", FileKind.PHOTO, 64)
        fs.advance_time(1.0)
        fs.read_file("/a")
        assert fs.lookup("/a").attributes.access_count == 1
        assert fs.lookup("/a").attributes.last_access_years == 1.0

    def test_overwrite_page_in_place(self, fs):
        fs.create("/a", FileKind.APP_METADATA, 128)
        fs.overwrite_page("/a", 1, b"new")
        assert fs.read_file("/a")[1] == b"new"

    def test_overwrite_out_of_range_rejected(self, fs):
        fs.create("/a", FileKind.APP_METADATA, 64)
        with pytest.raises(IndexError):
            fs.overwrite_page("/a", 5, b"x")


class TestCapacityVariance:
    def test_allocation_beyond_capacity_rejected(self, fs):
        with pytest.raises(FsFullError):
            fs.create("/big", FileKind.VIDEO, 64 * 200)

    def test_shrinking_capacity_creates_over_capacity_state(self, fs):
        """§4.3: device capacity may shrink under the live data."""
        fs.create("/a", FileKind.VIDEO, 64 * 90)
        assert fs.over_capacity_pages() == 0
        fs.block_layer.shrink(20)
        assert fs.capacity_pages() == 80
        assert fs.over_capacity_pages() == 10
        assert fs.free_pages() == 0

    def test_utilization(self, fs):
        fs.create("/a", FileKind.VIDEO, 64 * 50)
        assert fs.utilization() == pytest.approx(0.5)

    def test_time_monotonic(self, fs):
        fs.advance_time(1.0)
        with pytest.raises(ValueError):
            fs.advance_time(0.5)


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=64 * 5), min_size=1, max_size=15)
)
@settings(max_examples=60, deadline=None)
def test_used_pages_always_sums_extents(sizes):
    """Property: used_pages equals the sum of per-file extents after any
    create/delete interleaving."""
    fs = FileSystem(FakeBlockLayer(capacity_pages=1000))
    for i, size in enumerate(sizes):
        fs.create(f"/f{i}", FileKind.DOCUMENT, size)
        if i % 3 == 2:
            fs.delete(f"/f{i - 1}")
    expected = sum(len(r.extents) for r in fs.live_files())
    assert fs.used_pages() == expected
    # every live extent is backed by a written page
    for record in fs.live_files():
        for lpn in record.extents:
            assert lpn in fs.block_layer.pages
