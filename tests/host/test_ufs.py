"""UFS LUN frontend: descriptors, write-buffer semantics, power loss."""

from __future__ import annotations

import pytest

from repro.core.config import default_config
from repro.core.partitions import build_partitions
from repro.host.ufs import WRITE_BUFFER_PAGES, LunConfig, UfsDevice, UfsError


@pytest.fixture
def ufs():
    device = build_partitions(default_config(seed=41))
    ftl = device.ftl
    luns = [
        LunConfig(lun_id=0, name="system", stream="sys",
                  reliable_writes=True, bootable=True),
        LunConfig(lun_id=1, name="userdata", stream="spare",
                  reliable_writes=False),
    ]
    return UfsDevice(ftl, luns), device


class TestProvisioning:
    def test_descriptors(self, ufs):
        device, _ = ufs
        descriptors = device.luns()
        assert [d.lun_id for d in descriptors] == [0, 1]
        assert descriptors[0].reliable_writes
        assert descriptors[0].bootable
        assert not descriptors[1].reliable_writes

    def test_unknown_stream_rejected(self, ufs):
        _, partitioned = ufs
        with pytest.raises(ValueError):
            UfsDevice(partitioned.ftl, [
                LunConfig(lun_id=0, name="x", stream="nope", reliable_writes=True)
            ])

    def test_duplicate_lun_ids_rejected(self, ufs):
        _, partitioned = ufs
        with pytest.raises(ValueError):
            UfsDevice(partitioned.ftl, [
                LunConfig(0, "a", "sys", True),
                LunConfig(0, "b", "spare", False),
            ])

    def test_unknown_lun_errors(self, ufs):
        device, _ = ufs
        with pytest.raises(UfsError):
            device.read(9, 0)


class TestDataPath:
    def test_reliable_write_hits_flash_immediately(self, ufs):
        device, partitioned = ufs
        device.write(0, 5, b"critical")
        assert partitioned.ftl.page_map.is_mapped(5)
        assert device.read(0, 5)[:8] == b"critical"

    def test_buffered_write_defers_flash(self, ufs):
        device, partitioned = ufs
        device.write(1, 7, b"media")
        assert not partitioned.ftl.page_map.is_mapped(7)
        assert device.read(1, 7) == b"media"  # served from buffer

    def test_buffer_spills_when_full(self, ufs):
        device, partitioned = ufs
        for i in range(WRITE_BUFFER_PAGES + 1):
            device.write(1, 100 + i, b"x")
        assert partitioned.ftl.page_map.mapped_count() >= WRITE_BUFFER_PAGES

    def test_sync_flushes(self, ufs):
        device, partitioned = ufs
        device.write(1, 7, b"media")
        flushed = device.sync(1)
        assert flushed == 1
        assert partitioned.ftl.page_map.is_mapped(7)

    def test_trim_clears_everywhere(self, ufs):
        device, partitioned = ufs
        device.write(1, 7, b"media")
        device.sync(1)
        device.trim(1, 7)
        assert not partitioned.ftl.page_map.is_mapped(7)
        with pytest.raises(UfsError):
            device.read(1, 7)


class TestPowerLoss:
    def test_reliable_lun_loses_nothing(self, ufs):
        device, _ = ufs
        device.write(0, 5, b"critical")
        lost = device.power_cut()
        assert lost[0] == 0
        assert device.read(0, 5)[:8] == b"critical"

    def test_normal_lun_loses_unsynced_writes(self, ufs):
        """§4.3: varying reliability during power failures -- the SPARE
        LUN may lose recently buffered media, which its contract allows."""
        device, _ = ufs
        device.write(1, 7, b"media")
        lost = device.power_cut()
        assert lost[1] == 1
        with pytest.raises(UfsError):
            device.read(1, 7)

    def test_synced_writes_survive_power_cut(self, ufs):
        device, _ = ufs
        device.write(1, 7, b"media")
        device.sync()
        lost = device.power_cut()
        assert lost[1] == 0
        assert device.read(1, 7)[:5] == b"media"


class TestDynamicCapacity:
    def test_capacity_shrinks_with_retired_blocks(self, ufs):
        """§4.3: dynamic device capacity surfaces wear to the host."""
        device, partitioned = ufs
        before = device.describe(1).capacity_pages
        stream = partitioned.ftl.stream("spare")
        victim = stream.free.pop()
        partitioned.chip.retire_block(victim)
        after = device.describe(1).capacity_pages
        assert after < before
