"""Block layer: default placement, sticky relocation, capacity."""

from __future__ import annotations

import pytest

from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.chip import FlashChip
from repro.flash.geometry import SMALL_GEOMETRY
from repro.ftl.ftl import Ftl
from repro.ftl.streams import StreamConfig
from repro.host.block_layer import BlockLayer
from repro.host.hints import Placement, PlacementHint


@pytest.fixture
def layer() -> BlockLayer:
    chip = FlashChip(SMALL_GEOMETRY, CellTechnology.PLC, seed=3)
    total = SMALL_GEOMETRY.total_blocks
    streams = [
        StreamConfig("sys", pseudo_mode(CellTechnology.PLC, 4), POLICIES[ProtectionLevel.STRONG]),
        StreamConfig("spare", native_mode(CellTechnology.PLC), POLICIES[ProtectionLevel.NONE]),
    ]
    ftl = Ftl(
        chip, streams,
        {"sys": list(range(total // 2)), "spare": list(range(total // 2, total))},
    )
    return BlockLayer(ftl)


class TestPlacement:
    def test_default_placement_is_sys(self, layer):
        """§4.4: 'new file data will first be written to high-endurance
        pseudo-QLC memory'."""
        layer.write_page(1, b"data")
        assert layer.ftl.stream_of(1) == "sys"
        assert layer.placement_of(1) is Placement.SYS

    def test_relocate_to_spare_is_sticky(self, layer):
        layer.write_page(1, b"data")
        layer.relocate(1, Placement.SPARE)
        assert layer.ftl.stream_of(1) == "spare"
        # future rewrites honour the sticky placement
        layer.write_page(1, b"data2")
        assert layer.ftl.stream_of(1) == "spare"

    def test_relocate_noop_when_already_there(self, layer):
        layer.write_page(1, b"data")
        writes_before = layer.ftl.stats.host_writes
        layer.relocate(1, Placement.SYS)
        assert layer.ftl.stats.host_writes == writes_before

    def test_relocate_unwritten_lpn_sets_placement_only(self, layer):
        layer.relocate(9, Placement.SPARE)
        layer.write_page(9, b"later")
        assert layer.ftl.stream_of(9) == "spare"

    def test_trim_forgets_placement(self, layer):
        layer.write_page(1, b"data")
        layer.relocate(1, Placement.SPARE)
        layer.trim_page(1)
        assert layer.placement_of(1) is Placement.SYS  # back to default


class TestIO:
    def test_roundtrip_through_sys(self, layer, rng):
        payload = rng.bytes(layer.page_bytes)
        layer.write_page(5, payload)
        assert layer.read_page(5)[: len(payload)] == payload

    def test_page_bytes_is_min_of_streams(self, layer):
        sys_bytes = layer.ftl.logical_page_bytes("sys")
        spare_bytes = layer.ftl.logical_page_bytes("spare")
        assert layer.page_bytes == min(sys_bytes, spare_bytes)

    def test_audited_read_reports_ecc_activity(self, layer, rng):
        layer.write_page(5, rng.bytes(layer.page_bytes))
        result = layer.read_page_audited(5)
        assert result.uncorrectable_codewords == 0

    def test_capacity_sums_both_streams(self, layer):
        expected = layer.ftl.stream_capacity_pages("sys") + layer.ftl.stream_capacity_pages(
            "spare"
        )
        assert layer.capacity_pages() == expected


class TestHints:
    def test_hint_confidence_validated(self):
        with pytest.raises(ValueError):
            PlacementHint(file_id=1, placement=Placement.SYS, confidence=1.5)
