"""File model: kinds, attributes, access bookkeeping."""

from __future__ import annotations

import pytest

from repro.host.files import (
    MEDIA_KINDS,
    SYSTEM_KINDS,
    FileAttributes,
    FileKind,
    FileRecord,
)


def make_record(kind=FileKind.PHOTO, **attrs) -> FileRecord:
    return FileRecord(
        file_id=1, path="/x", kind=kind, size_bytes=1000,
        attributes=FileAttributes(**attrs),
    )


class TestKinds:
    def test_media_and_system_kinds_disjoint(self):
        assert not MEDIA_KINDS & SYSTEM_KINDS

    def test_photo_is_media_not_system(self):
        record = make_record(FileKind.PHOTO)
        assert record.is_media
        assert not record.is_system

    def test_os_file_is_system_not_media(self):
        record = make_record(FileKind.OS_SYSTEM)
        assert record.is_system
        assert not record.is_media

    def test_document_is_neither(self):
        record = make_record(FileKind.DOCUMENT)
        assert not record.is_media
        assert not record.is_system


class TestBookkeeping:
    def test_touch_updates_access(self):
        record = make_record()
        record.touch(1.5)
        assert record.attributes.access_count == 1
        assert record.attributes.last_access_years == 1.5

    def test_mark_modified_updates_both(self):
        record = make_record()
        record.mark_modified(2.0)
        assert record.attributes.modify_count == 1
        assert record.attributes.last_access_years == 2.0

    def test_age_and_idle(self):
        record = make_record(created_years=1.0, last_access_years=1.5)
        assert record.age_years(3.0) == pytest.approx(2.0)
        assert record.idle_years(3.0) == pytest.approx(1.5)

    def test_age_never_negative(self):
        record = make_record(created_years=5.0)
        assert record.age_years(1.0) == 0.0
