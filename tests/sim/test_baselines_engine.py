"""Device builds and the lifetime engine: who-wins shape checks."""

from __future__ import annotations

import pytest

from repro.sim.baselines import (
    build_plc_naive,
    build_qlc_baseline,
    build_sos,
    build_tlc_baseline,
)
from repro.sim.engine import SimConfig, run_lifetime
from repro.workloads.mobile import MobileWorkload, WorkloadConfig


@pytest.fixture(scope="module")
def summaries():
    return MobileWorkload(WorkloadConfig(mix="typical", days=365, seed=17)).daily_summaries()


class TestBuilds:
    def test_carbon_ordering(self):
        """Embodied intensity: TLC > QLC > SOS > PLC-naive."""
        tlc = build_tlc_baseline().intensity_kg_per_gb
        qlc = build_qlc_baseline().intensity_kg_per_gb
        sos = build_sos().intensity_kg_per_gb
        plc = build_plc_naive().intensity_kg_per_gb
        assert tlc > qlc > sos > plc

    def test_sos_carbon_reduction_is_one_third_of_tlc(self):
        tlc = build_tlc_baseline()
        sos = build_sos()
        assert 1 - sos.intensity_kg_per_gb / tlc.intensity_kg_per_gb == pytest.approx(
            0.325, abs=0.001
        )

    def test_sos_has_two_partitions(self):
        build = build_sos()
        assert set(build.device.partitions) == {"sys", "spare"}

    def test_sos_spare_wl_disabled(self):
        build = build_sos()
        assert not build.device.partition("spare").spec.wear_leveling
        assert build.device.partition("sys").spec.wear_leveling


class TestEngine:
    def test_one_year_typical_use_all_devices_survive(self, summaries):
        for builder in (build_tlc_baseline, build_qlc_baseline, build_sos):
            result = run_lifetime(builder(64.0), summaries)
            assert result.survived(), builder.__name__

    def test_tlc_wear_fraction_small_under_typical_use(self, summaries):
        """§2.3.2: typical users consume a tiny share of endurance."""
        result = run_lifetime(build_tlc_baseline(64.0), summaries)
        assert result.final.sys_wear_fraction < 0.05

    def test_sos_sys_wears_faster_than_tlc_but_survives(self, summaries):
        tlc = run_lifetime(build_tlc_baseline(64.0), summaries)
        sos = run_lifetime(build_sos(64.0), summaries)
        assert sos.final.sys_wear_fraction > tlc.final.sys_wear_fraction
        assert sos.final.sys_wear_fraction < 0.5

    def test_spare_quality_stays_high_with_scrub(self, summaries):
        result = run_lifetime(build_sos(64.0, scrub_enabled=True), summaries)
        assert result.final.spare_quality > 0.9

    def test_scrub_improves_end_of_life_quality(self):
        days = 3 * 365
        summaries = MobileWorkload(
            WorkloadConfig(mix="typical", days=days, seed=17)
        ).daily_summaries()
        with_scrub = run_lifetime(build_sos(64.0, scrub_enabled=True), summaries)
        without = run_lifetime(build_sos(64.0, scrub_enabled=False), summaries)
        assert with_scrub.final.spare_quality >= without.final.spare_quality

    def test_samples_are_chronological(self, summaries):
        result = run_lifetime(build_sos(64.0), summaries)
        days = [s.day for s in result.samples]
        assert days == sorted(days)
        assert result.samples[-1].day == len(summaries) - 1

    def test_media_demotion_rate_shifts_wear(self, summaries):
        """More demotion -> more SPARE wear, less SYS pressure."""
        high = run_lifetime(
            build_sos(64.0), summaries, SimConfig(media_demotion_rate=0.95)
        )
        low = run_lifetime(
            build_sos(64.0), summaries, SimConfig(media_demotion_rate=0.1)
        )
        assert high.final.spare_wear_fraction > low.final.spare_wear_fraction

    def test_final_raises_without_samples(self):
        from repro.sim.engine import LifetimeResult

        result = LifetimeResult(build_name="x", capacity_gb=1.0, intensity_kg_per_gb=0.1)
        with pytest.raises(ValueError):
            _ = result.final
