"""Device builds and the lifetime engine: who-wins shape checks."""

from __future__ import annotations

import pytest

from repro.sim.baselines import (
    build_plc_naive,
    build_qlc_baseline,
    build_sos,
    build_tlc_baseline,
)
from repro.sim.engine import SimConfig, run_lifetime
from repro.workloads.mobile import MobileWorkload, WorkloadConfig
from repro.workloads.traces import DailySummary


@pytest.fixture(scope="module")
def summaries():
    return MobileWorkload(WorkloadConfig(mix="typical", days=365, seed=17)).daily_summaries()


class TestBuilds:
    def test_carbon_ordering(self):
        """Embodied intensity: TLC > QLC > SOS > PLC-naive."""
        tlc = build_tlc_baseline().intensity_kg_per_gb
        qlc = build_qlc_baseline().intensity_kg_per_gb
        sos = build_sos().intensity_kg_per_gb
        plc = build_plc_naive().intensity_kg_per_gb
        assert tlc > qlc > sos > plc

    def test_sos_carbon_reduction_is_one_third_of_tlc(self):
        tlc = build_tlc_baseline()
        sos = build_sos()
        assert 1 - sos.intensity_kg_per_gb / tlc.intensity_kg_per_gb == pytest.approx(
            0.325, abs=0.001
        )

    def test_sos_has_two_partitions(self):
        build = build_sos()
        assert set(build.device.partitions) == {"sys", "spare"}

    def test_sos_spare_wl_disabled(self):
        build = build_sos()
        assert not build.device.partition("spare").spec.wear_leveling
        assert build.device.partition("sys").spec.wear_leveling


class TestEngine:
    def test_one_year_typical_use_all_devices_survive(self, summaries):
        for builder in (build_tlc_baseline, build_qlc_baseline, build_sos):
            result = run_lifetime(builder(64.0), summaries)
            assert result.survived(), builder.__name__

    def test_tlc_wear_fraction_small_under_typical_use(self, summaries):
        """§2.3.2: typical users consume a tiny share of endurance."""
        result = run_lifetime(build_tlc_baseline(64.0), summaries)
        assert result.final.sys_wear_fraction < 0.05

    def test_sos_sys_wears_faster_than_tlc_but_survives(self, summaries):
        tlc = run_lifetime(build_tlc_baseline(64.0), summaries)
        sos = run_lifetime(build_sos(64.0), summaries)
        assert sos.final.sys_wear_fraction > tlc.final.sys_wear_fraction
        assert sos.final.sys_wear_fraction < 0.5

    def test_spare_quality_stays_high_with_scrub(self, summaries):
        result = run_lifetime(build_sos(64.0, scrub_enabled=True), summaries)
        assert result.final.spare_quality > 0.9

    def test_scrub_improves_end_of_life_quality(self):
        days = 3 * 365
        summaries = MobileWorkload(
            WorkloadConfig(mix="typical", days=days, seed=17)
        ).daily_summaries()
        with_scrub = run_lifetime(build_sos(64.0, scrub_enabled=True), summaries)
        without = run_lifetime(build_sos(64.0, scrub_enabled=False), summaries)
        assert with_scrub.final.spare_quality >= without.final.spare_quality

    def test_samples_are_chronological(self, summaries):
        result = run_lifetime(build_sos(64.0), summaries)
        days = [s.day for s in result.samples]
        assert days == sorted(days)
        assert result.samples[-1].day == len(summaries) - 1

    def test_media_demotion_rate_shifts_wear(self, summaries):
        """More demotion -> more SPARE wear, less SYS pressure."""
        high = run_lifetime(
            build_sos(64.0), summaries, SimConfig(media_demotion_rate=0.95)
        )
        low = run_lifetime(
            build_sos(64.0), summaries, SimConfig(media_demotion_rate=0.1)
        )
        assert high.final.spare_wear_fraction > low.final.spare_wear_fraction

    def test_final_raises_without_samples(self):
        from repro.sim.engine import LifetimeResult

        result = LifetimeResult(build_name="x", capacity_gb=1.0, intensity_kg_per_gb=0.1)
        with pytest.raises(ValueError):
            _ = result.final


def _delete_only_day(day: int, delete_gb: float) -> DailySummary:
    return DailySummary(day=day, new_media_gb=0.0, new_other_gb=0.0,
                        overwrite_gb=0.0, read_gb=0.0, delete_gb=delete_gb)


def _fill(partition, fraction: float) -> None:
    for group in partition.live_groups():
        group.live_gb = group.capacity_gb * fraction
        group.mean_write_time = 0.0


class TestDeleteAccounting:
    """Deletion volume must be apportioned, not duplicated, across
    pressured partitions (multi-partition builds used to delete the
    day's volume once *per* partition)."""

    def test_single_partition_deletes_exactly_the_summary_volume(self):
        build = build_tlc_baseline(64.0)
        partition = build.device.partition("main")
        _fill(partition, 0.9)
        before = partition.live_data_gb()
        run_lifetime(build, [_delete_only_day(0, 5.0)])
        assert before - partition.live_data_gb() == pytest.approx(5.0)

    def test_two_pressured_partitions_delete_the_volume_once_total(self):
        build = build_sos(64.0)
        for name in ("sys", "spare"):
            _fill(build.device.partition(name), 0.9)
        before = sum(p.live_data_gb() for p in build.device.partitions.values())
        run_lifetime(build, [_delete_only_day(0, 5.0)])
        after = sum(p.live_data_gb() for p in build.device.partitions.values())
        # the old per-partition loop removed 5 GB from EACH partition
        assert before - after == pytest.approx(5.0)

    def test_apportionment_follows_live_data_share(self):
        build = build_sos(64.0)
        sys_part = build.device.partition("sys")
        spare = build.device.partition("spare")
        _fill(sys_part, 0.9)
        _fill(spare, 0.95)
        sys_before = sys_part.live_data_gb()
        spare_before = spare.live_data_gb()
        run_lifetime(build, [_delete_only_day(0, 4.0)])
        sys_share = sys_before / (sys_before + spare_before)
        assert sys_before - sys_part.live_data_gb() == pytest.approx(4.0 * sys_share)
        assert spare_before - spare.live_data_gb() == pytest.approx(
            4.0 * (1 - sys_share)
        )

    def test_unpressured_partitions_keep_their_data(self):
        build = build_sos(64.0)
        _fill(build.device.partition("sys"), 0.9)
        _fill(build.device.partition("spare"), 0.2)  # below the 0.85 trigger
        spare_before = build.device.partition("spare").live_data_gb()
        run_lifetime(build, [_delete_only_day(0, 5.0)])
        assert build.device.partition("spare").live_data_gb() == pytest.approx(
            spare_before
        )


class TestSamplingPositions:
    """The final sample must be taken by position: trace days may be
    1-indexed or sliced, so ``day % cadence`` alone cannot find the end."""

    def test_short_one_indexed_trace_still_yields_a_final_sample(self):
        summaries = [_delete_only_day(day, 0.0) for day in range(1, 11)]
        result = run_lifetime(build_tlc_baseline(64.0), summaries)
        assert result.samples  # old behavior: no day hit the cadence -> empty
        assert result.final.day == 10

    def test_sliced_trace_samples_cadence_and_end(self):
        summaries = [_delete_only_day(day, 0.0) for day in range(5, 41)]
        result = run_lifetime(
            build_tlc_baseline(64.0), summaries, SimConfig(sample_every_days=30)
        )
        assert [s.day for s in result.samples] == [30, 40]

    def test_final_sample_not_duplicated_when_cadence_hits_the_end(self):
        summaries = [_delete_only_day(day, 0.0) for day in range(0, 31)]
        result = run_lifetime(
            build_tlc_baseline(64.0), summaries, SimConfig(sample_every_days=30)
        )
        assert [s.day for s in result.samples] == [0, 30]
