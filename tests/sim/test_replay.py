"""Op-level trace replay against the bit-exact device."""

from __future__ import annotations

import pytest

from repro.core.config import default_config
from repro.core.sos_device import SOSDevice
from repro.flash.geometry import Geometry
from repro.host.files import FileKind
from repro.sim.replay import replay
from repro.workloads.traces import OpKind, TraceOp

GEOM = Geometry(page_size_bytes=512, pages_per_block=16, blocks_per_plane=32,
                planes_per_die=2, dies=1)


@pytest.fixture
def device() -> SOSDevice:
    return SOSDevice(default_config(seed=14, geometry=GEOM))


def op(day, kind, path, size=600, file_kind=FileKind.PHOTO, cloud=False):
    return TraceOp(day=day, kind=kind, path=path, file_kind=file_kind,
                   size_bytes=size, cloud_backed=cloud)


class TestBasicOps:
    def test_create_read_delete(self, device):
        ops = [
            op(0, OpKind.CREATE, "/a"),
            op(1, OpKind.READ, "/a"),
            op(2, OpKind.DELETE, "/a"),
        ]
        stats = replay(device, ops)
        assert stats.creates == 1
        assert stats.reads == 1
        assert stats.deletes == 1
        assert stats.skipped_full == 0

    def test_overwrite_creates_if_missing(self, device):
        stats = replay(device, [op(0, OpKind.OVERWRITE, "/x",
                                   file_kind=FileKind.APP_METADATA)])
        assert stats.creates == 1
        assert stats.overwrites == 1

    def test_read_and_delete_of_missing_paths_tolerated(self, device):
        stats = replay(device, [op(0, OpKind.READ, "/ghost"),
                                op(0, OpKind.DELETE, "/ghost")])
        assert stats.reads == 0
        assert stats.deletes == 0

    def test_duplicate_create_counts_skipped_exists(self, device):
        """EEXIST is not ENOSPC: duplicate paths get their own counter."""
        stats = replay(device, [op(0, OpKind.CREATE, "/a"),
                                op(0, OpKind.CREATE, "/a")])
        assert stats.creates == 1
        assert stats.skipped_exists == 1
        assert stats.skipped_full == 0

    def test_cloud_backed_create_feeds_backup(self, device):
        replay(device, [op(0, OpKind.CREATE, "/v", cloud=True,
                           file_kind=FileKind.VIDEO)])
        record = device.filesystem.lookup("/v")
        assert all(device.backup.covered(lpn) for lpn in record.extents)


class TestDaemonCadence:
    def test_daemon_runs_on_cadence(self, device):
        ops = [op(day, OpKind.CREATE, f"/f{day}") for day in range(0, 22)]
        stats = replay(device, ops, daemon_every_days=7)
        assert stats.daemon_runs >= 4  # days 0, 7, 14, 21

    def test_time_follows_trace_days(self, device):
        replay(device, [op(10, OpKind.CREATE, "/late")])
        assert device.now_years == pytest.approx(10 / 365)


class TestPressure:
    @pytest.mark.slow
    def test_fill_beyond_capacity_is_absorbed(self, device):
        """Creating far more than fits must not crash: skips + daemon."""
        ops = [op(day, OpKind.CREATE, f"/big{day}_{i}", size=4000)
               for day in range(30) for i in range(6)]
        stats = replay(device, ops, daemon_every_days=3)
        assert stats.creates > 0
        assert stats.skipped_full > 0
        # invariant: the device survived with a consistent file system
        assert device.filesystem.used_pages() <= device.filesystem.capacity_pages()
