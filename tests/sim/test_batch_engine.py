"""Scalar-vs-batched fleet engine equivalence.

The batched engine's contract (see ``repro.sim.batch``): integer
observables (sample days, retire/resuscitate counters, fault counters)
match the per-device scalar engine exactly; float observables match to
tight relative tolerance (bit-identical while every group is alive, and
only pairwise-summation tree order once groups retire).  These tests pin
that contract for deterministic configurations, under fault plans, and
property-based over random workload mixes and fleet sizes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultConfig, FaultPlan
from repro.obs import merge_snapshots, observed, strip_timings
from repro.sim import (
    SummaryBatch,
    build_sos,
    build_tlc_baseline,
    run_lifetime,
    run_lifetime_batch,
)
from repro.workloads.mobile import MobileWorkload, WorkloadConfig

MIX_NAMES = ("light", "typical", "heavy", "adversarial")

FAULT_CONFIG = FaultConfig(
    block_infant_mortality=0.05,
    transient_read_rate=0.02,
    power_loss_rate=0.01,
    cloud_outage_rate=0.01,
)

#: float observables on a DaySample (ints are compared exactly)
SAMPLE_FLOATS = (
    "capacity_gb",
    "sys_wear_fraction",
    "spare_wear_fraction",
    "spare_quality",
    "sys_uncorrectable",
)


def _workloads(mixes, days, seed_base=1000):
    return [
        MobileWorkload(
            WorkloadConfig(mix=mix, days=days, seed=seed_base + i)
        ).daily_summaries()
        for i, mix in enumerate(mixes)
    ]


def _plans(builder, n, days, seed_base=7000):
    targets = (
        {"main": 20} if builder is build_tlc_baseline else {"sys": 20, "spare": 20}
    )
    return [
        FaultPlan.generate(FAULT_CONFIG, seed_base + i, days, targets)
        for i in range(n)
    ]


def _run_both(builder, mixes, days, with_faults=False):
    workloads = _workloads(mixes, days)
    plans = _plans(builder, len(mixes), days) if with_faults else None
    scalar_builds = [builder() for _ in mixes]
    scalar = [
        run_lifetime(b, w, fault_plan=(plans[i] if plans else None))
        for i, (b, w) in enumerate(zip(scalar_builds, workloads))
    ]
    batch_builds = [builder() for _ in mixes]
    batched = run_lifetime_batch(
        batch_builds, SummaryBatch.from_summaries(workloads), fault_plans=plans
    )
    return scalar, batched, scalar_builds, batch_builds


def _assert_equivalent(scalar, batched, scalar_builds, batch_builds, rel=1e-9):
    for i, (s, b) in enumerate(zip(scalar, batched)):
        assert len(s.samples) == len(b.samples)
        for ss, bs in zip(s.samples, b.samples):
            assert (ss.day, ss.retired_groups, ss.resuscitated_groups) == (
                bs.day, bs.retired_groups, bs.resuscitated_groups,
            ), f"device {i} day {ss.day}"
            assert ss.years == bs.years
            for field in SAMPLE_FLOATS:
                a, c = getattr(ss, field), getattr(bs, field)
                assert a == pytest.approx(c, rel=rel, abs=1e-12), (i, field)
        if s.faults is not None or b.faults is not None:
            assert s.faults.as_dict() == b.faults.as_dict(), f"device {i}"
    # the engines hand their end state back to the device objects; the
    # fleets must agree there too, not just in the sampled series
    for i, (sb, bb) in enumerate(zip(scalar_builds, batch_builds)):
        assert sb.device.now_years == bb.device.now_years
        for name, sp in sb.device.partitions.items():
            bp = bb.device.partitions[name]
            s_state = sp.export_group_state()
            b_state = bp.export_group_state()
            for key in s_state:
                np.testing.assert_allclose(
                    s_state[key], b_state[key], rtol=rel, atol=1e-12,
                    err_msg=f"device {i} partition {name} field {key}",
                )
            assert sp.retired_count == bp.retired_count
            assert sp.resuscitated_count == bp.resuscitated_count


def test_batch_matches_scalar_tlc_bit_identical():
    """Fault-free TLC fleets stay *bit-identical*, not just close."""
    scalar, batched, sb, bb = _run_both(
        build_tlc_baseline, ["light", "typical", "heavy", "adversarial"], 180
    )
    _assert_equivalent(scalar, batched, sb, bb, rel=0.0)


def test_batch_matches_scalar_sos():
    scalar, batched, sb, bb = _run_both(
        build_sos, ["typical", "heavy", "adversarial", "light", "heavy"], 200
    )
    _assert_equivalent(scalar, batched, sb, bb)


@pytest.mark.parametrize("builder", [build_tlc_baseline, build_sos])
def test_batch_matches_scalar_under_fault_plan(builder):
    scalar, batched, sb, bb = _run_both(
        builder, ["typical", "heavy", "light"], 180, with_faults=True
    )
    _assert_equivalent(scalar, batched, sb, bb)


def test_single_device_batch_degenerates_to_scalar():
    scalar, batched, sb, bb = _run_both(build_sos, ["heavy"], 120)
    _assert_equivalent(scalar, batched, sb, bb)


@given(
    mixes=st.lists(st.sampled_from(MIX_NAMES), min_size=1, max_size=5),
    days=st.integers(min_value=30, max_value=150),
    use_sos=st.booleans(),
    with_faults=st.booleans(),
)
@settings(max_examples=12, deadline=None)
def test_batch_equivalence_property(mixes, days, use_sos, with_faults):
    """Any mix of workloads, fleet size, build, and fault plan agrees."""
    builder = build_sos if use_sos else build_tlc_baseline
    scalar, batched, sb, bb = _run_both(builder, mixes, days, with_faults)
    _assert_equivalent(scalar, batched, sb, bb)


def test_batch_obs_counters_match_scalar_runs():
    """One batched run reports the same deterministic metrics rollup as
    the equivalent per-device scalar runs (span *call* counts included;
    wall times are stripped, histogram totals float-compared)."""
    mixes = ["typical", "heavy", "light"]
    days = 90
    workloads = _workloads(mixes, days)
    with observed(trace=True) as scalar_obs:
        for i, w in enumerate(workloads):
            run_lifetime(build_tlc_baseline(), w)
    with observed(trace=True) as batch_obs:
        run_lifetime_batch(
            [build_tlc_baseline() for _ in mixes],
            SummaryBatch.from_summaries(workloads),
        )
    scalar_snap = strip_timings(merge_snapshots(scalar_obs.registry.snapshot()))
    batch_snap = strip_timings(merge_snapshots(batch_obs.registry.snapshot()))
    assert scalar_snap["counters"] == batch_snap["counters"]
    assert scalar_snap["spans"] == batch_snap["spans"]
    assert scalar_snap["histograms"].keys() == batch_snap["histograms"].keys()
    for name, hist in scalar_snap["histograms"].items():
        other = batch_snap["histograms"][name]
        assert hist["bounds"] == other["bounds"]
        assert hist["counts"] == other["counts"]
        assert hist["count"] == other["count"]
        assert hist["total"] == pytest.approx(other["total"], rel=1e-12)
    # the batched trace carries the same events, tagged with device ids
    assert len(batch_obs.events) == len(scalar_obs.events)


def test_batch_rejects_mismatched_inputs():
    w = _workloads(["typical"], 30)
    with pytest.raises(ValueError):
        run_lifetime_batch([], SummaryBatch.from_summaries(w))
    builds = [build_tlc_baseline(), build_sos()]
    with pytest.raises(ValueError):
        run_lifetime_batch(
            builds, SummaryBatch.from_summaries(_workloads(["typical", "light"], 30))
        )
