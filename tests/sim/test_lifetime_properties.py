"""Property-based tests of the epoch lifetime model's invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, native_mode
from repro.sim.lifetime import LifetimeDevice, Partition, PartitionSpec

write_days = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=8.0),   # new GB
        st.floats(min_value=0.0, max_value=8.0),   # churn GB
        st.floats(min_value=0.0, max_value=4.0),   # delete GB
    ),
    min_size=1,
    max_size=120,
)


def make_partition(wear_leveling: bool, scrub: bool = False) -> Partition:
    return Partition(PartitionSpec(
        name="p",
        mode=native_mode(CellTechnology.PLC),
        protection=POLICIES[ProtectionLevel.NONE],
        capacity_gb=32.0,
        wear_leveling=wear_leveling,
        max_rber=4e-4,
        resuscitation_bits=(3, 1),
        scrub_enabled=scrub,
    ))


@given(days=write_days, wl=st.booleans())
@settings(max_examples=60, deadline=None)
def test_partition_invariants_hold_under_any_traffic(days, wl):
    """Capacity, live data, and wear invariants under arbitrary traffic."""
    partition = make_partition(wl)
    initial_capacity = partition.capacity_gb()
    prev_mean = 0.0
    for i, (new_gb, churn_gb, delete_gb) in enumerate(days):
        now = i / 365.0
        partition.host_write(new_gb, now, churn=False)
        partition.host_write(churn_gb, now, churn=True)
        partition.host_delete(delete_gb)
        if i % 14 == 0:
            partition.maintain(now)
        # invariants
        assert 0.0 <= partition.capacity_gb() <= initial_capacity + 1e-9
        assert partition.live_data_gb() <= partition.capacity_gb() + 1e-9
        assert partition.live_data_gb() >= -1e-9
        mean = partition.mean_pec()
        assert mean >= 0.0
        assert partition.max_pec() >= mean - 1e-9
        prev_mean = mean
    # group-level sanity: retired groups hold nothing
    for group in partition.groups:
        if group.retired:
            assert group.live_gb == 0.0


@given(days=write_days)
@settings(max_examples=30, deadline=None)
def test_wear_is_monotone_without_scrub(days):
    """Without scrubbing, PEC never decreases."""
    partition = make_partition(wear_leveling=True, scrub=False)
    prev = 0.0
    for i, (new_gb, churn_gb, _delete) in enumerate(days):
        partition.host_write(new_gb, i / 365.0, churn=False)
        partition.host_write(churn_gb, i / 365.0, churn=True)
        current = sum(g.pec for g in partition.groups)
        assert current >= prev - 1e-12
        prev = current


@given(
    new_gb=st.floats(min_value=0.1, max_value=5.0),
    days=st.integers(min_value=10, max_value=200),
)
@settings(max_examples=30, deadline=None)
def test_rber_monotone_in_time_for_idle_data(new_gb, days):
    """Data written once only gets worse as it ages."""
    partition = make_partition(wear_leveling=False)
    partition.host_write(new_gb, 0.0, churn=False)
    values = [partition.worst_group_rber(now=d / 365.0) for d in range(0, days, 10)]
    assert values == sorted(values)


@given(days=write_days)
@settings(max_examples=20, deadline=None)
def test_device_capacity_is_sum_of_partitions(days):
    device = LifetimeDevice([
        PartitionSpec(name="a", mode=native_mode(CellTechnology.PLC),
                      protection=POLICIES[ProtectionLevel.NONE], capacity_gb=16.0),
        PartitionSpec(name="b", mode=native_mode(CellTechnology.QLC),
                      protection=POLICIES[ProtectionLevel.STRONG], capacity_gb=48.0),
    ])
    for new_gb, churn_gb, _delete in days[:30]:
        device.step_day({"a": (new_gb, 0.0), "b": (0.0, churn_gb)})
        total = sum(p.capacity_gb() for p in device.partitions.values())
        assert device.capacity_gb() == total
