"""Whole-shard state export/import on the batched fleet engine.

The fleet layer checkpoints shards as stacked arrays; these tests pin
that the roundtrip is lossless (continuing from imported state is
bit-identical to never exporting), that the tightened integer lanes
(int32 refreshes, int8 mode indexes) survive, and that malformed state
is rejected instead of silently reshaped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.baselines import build_sos, build_tlc_baseline
from repro.sim.batch import BatchLifetimeDevice

N = 4


def _batch(builder=build_tlc_baseline, n=N):
    return BatchLifetimeDevice.from_devices(
        [builder(32.0).device for _ in range(n)]
    )


def _step_days(batch, days, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(days):
        writes = {
            name: (rng.random(batch.n_devices) * 3.0,
                   rng.random(batch.n_devices) * 1.5)
            for name in batch.partitions
        }
        batch.step_day(writes, np.ones(batch.n_devices, dtype=bool))


@pytest.mark.parametrize("builder", [build_tlc_baseline, build_sos],
                         ids=["tlc", "sos"])
def test_roundtrip_is_lossless(builder):
    batch = _batch(builder)
    _step_days(batch, 45)
    state = batch.export_state()

    fresh = _batch(builder)
    fresh.import_state(state)
    for name, partition in batch.partitions.items():
        for field, array in partition.export_state().items():
            assert np.array_equal(
                fresh.partitions[name].export_state()[field], array
            ), (name, field)
    assert fresh.now_years == batch.now_years

    # continuing from imported state is bit-identical to never exporting
    _step_days(batch, 30, seed=1)
    _step_days(fresh, 30, seed=1)
    assert np.array_equal(batch.capacity_gb(), fresh.capacity_gb())
    for name, partition in batch.partitions.items():
        other = fresh.partitions[name]
        assert np.array_equal(partition.wear_used_fraction(),
                              other.wear_used_fraction())
        assert np.array_equal(partition.mean_quality(batch.now_years),
                              other.mean_quality(fresh.now_years))


def test_export_does_not_alias_live_state():
    batch = _batch()
    _step_days(batch, 5)
    state = batch.export_state()
    before = {
        name: {k: v.copy() for k, v in part.items()}
        for name, part in state["partitions"].items()
    }
    _step_days(batch, 5, seed=2)
    for name, part in batch.export_state()["partitions"].items():
        assert not np.array_equal(part["pec"], before[name]["pec"])
    for name, part in state["partitions"].items():
        assert np.array_equal(part["pec"], before[name]["pec"])


def test_integer_lanes_stay_tight():
    batch = _batch()
    _step_days(batch, 20)
    for partition in batch.partitions.values():
        assert partition._refreshes.dtype == np.int32
        assert partition._mode_idx.dtype == np.int8
    state = batch.export_state()
    fresh = _batch()
    fresh.import_state(state)
    for partition in fresh.partitions.values():
        assert partition._refreshes.dtype == np.int32
        assert partition._mode_idx.dtype == np.int8


def test_import_rejects_wrong_shapes():
    batch = _batch()
    state = batch.export_state()
    name = next(iter(state["partitions"]))
    bad = dict(state["partitions"][name])
    bad["pec"] = bad["pec"][:-1]
    with pytest.raises(ValueError, match="shape"):
        batch.partitions[name].import_state(bad)


def test_import_rejects_unknown_mode_bits():
    batch = _batch()
    state = batch.export_state()
    name = next(iter(state["partitions"]))
    bad = dict(state["partitions"][name])
    bad["mode_bits"] = np.zeros_like(bad["mode_bits"])  # 0 bits: no mode
    with pytest.raises(ValueError, match="resuscitation ladder"):
        batch.partitions[name].import_state(bad)


def test_device_import_rejects_mismatched_partitions():
    batch = _batch()
    state = batch.export_state()
    state["partitions"] = {"nope": next(iter(state["partitions"].values()))}
    with pytest.raises(ValueError, match="partitions"):
        batch.import_state(state)
