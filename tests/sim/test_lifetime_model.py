"""Epoch lifetime model: wear accounting, maintenance, WL policies."""

from __future__ import annotations

import pytest

from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, native_mode
from repro.flash.reliability import endurance_pec
from repro.sim.lifetime import LifetimeDevice, Partition, PartitionSpec


def make_spec(**overrides) -> PartitionSpec:
    defaults = dict(
        name="main",
        mode=native_mode(CellTechnology.PLC),
        protection=POLICIES[ProtectionLevel.STRONG],
        capacity_gb=64.0,
        wear_leveling=True,
    )
    defaults.update(overrides)
    return PartitionSpec(**defaults)


class TestWearAccounting:
    def test_writes_raise_mean_pec_by_waf_over_capacity(self):
        partition = Partition(make_spec(waf=2.0, wear_leveling=True))
        partition.host_write(64.0, now=0.1, churn=False)  # one full device write
        # WL adds 10% overhead: 64 GB * 2.0 * 1.1 / 64 GB = 2.2 cycles
        assert partition.mean_pec() == pytest.approx(2.2, rel=1e-6)

    def test_wl_spreads_wear_evenly(self):
        partition = Partition(make_spec(wear_leveling=True))
        for day in range(50):
            partition.host_write(5.0, now=day / 365, churn=True)
        pecs = [g.pec for g in partition.live_groups()]
        assert max(pecs) - min(pecs) < 1e-9

    def test_no_wl_concentrates_churn_on_hot_groups(self):
        partition = Partition(make_spec(wear_leveling=False))
        for day in range(50):
            partition.host_write(5.0, now=day / 365, churn=True)
        pecs = sorted(g.pec for g in partition.live_groups())
        assert pecs[-1] > 10 * (pecs[0] + 1e-12)

    def test_no_wl_total_wear_is_lower(self):
        """Disabling WL avoids the leveling write overhead (§4.3)."""
        wl = Partition(make_spec(wear_leveling=True))
        nowl = Partition(make_spec(wear_leveling=False))
        for day in range(50):
            wl.host_write(5.0, now=day / 365, churn=True)
            nowl.host_write(5.0, now=day / 365, churn=True)
        total_wl = sum(g.pec * g.capacity_gb for g in wl.groups)
        total_nowl = sum(g.pec * g.capacity_gb for g in nowl.groups)
        assert total_nowl < total_wl

    def test_wear_used_fraction(self):
        partition = Partition(make_spec(waf=1.0, wear_leveling=False))
        rated = endurance_pec(native_mode(CellTechnology.PLC))
        # new-data appends round robin: each group gets equal share
        for _ in range(20):
            partition.host_write(64.0 / 20, now=0.0, churn=False)
        assert partition.wear_used_fraction() == pytest.approx(1.0 / rated, rel=0.01)


class TestDataAging:
    def test_unwritten_group_has_zero_age(self):
        partition = Partition(make_spec())
        assert partition.groups[0].data_age(now=5.0) == 0.0

    def test_age_advances_without_writes(self):
        partition = Partition(make_spec(wear_leveling=False))
        partition.host_write(3.0, now=0.0, churn=False)
        holder = next(g for g in partition.groups if g.live_gb > 0)
        assert holder.data_age(now=2.0) == pytest.approx(2.0)

    def test_new_writes_blend_age_down(self):
        partition = Partition(make_spec(wear_leveling=False, n_groups=1))
        partition.host_write(3.0, now=0.0, churn=False)
        partition.host_write(3.0, now=2.0, churn=False)
        group = partition.groups[0]
        assert 0.0 < group.data_age(now=2.0) < 2.0

    def test_rber_grows_with_group_age(self):
        partition = Partition(make_spec(wear_leveling=False))
        partition.host_write(3.0, now=0.0, churn=False)
        early = partition.worst_group_rber(now=0.1)
        late = partition.worst_group_rber(now=2.0)
        assert late > early


class TestMaintenance:
    def test_scrub_refreshes_endangered_groups(self):
        spec = make_spec(
            protection=POLICIES[ProtectionLevel.NONE],
            scrub_enabled=True,
            scrub_quality_floor=0.95,
            wear_leveling=False,
            max_rber=1.0,  # disable retirement for this test
        )
        partition = Partition(spec)
        partition.host_write(10.0, now=0.0, churn=False)
        # age until the quality forecast violates the floor
        partition.maintain(now=3.0)
        refreshed = [g for g in partition.groups if g.refreshes > 0]
        assert refreshed
        assert partition.refresh_writes_gb > 0
        assert all(g.data_age(3.0) == 0.0 for g in refreshed)

    def test_health_check_retires_hopeless_groups(self):
        spec = make_spec(max_rber=4e-4, resuscitation_bits=())
        partition = Partition(spec)
        for group in partition.groups[:3]:
            group.pec = 1e6
        partition.maintain(now=1.0)
        assert partition.retired_count == 3
        assert partition.capacity_gb() == pytest.approx(64.0 * 17 / 20)

    def test_health_check_resuscitates_with_ladder(self):
        """§4.3: worn PLC groups drop to pseudo-TLC, shrinking capacity
        by 2/5 instead of retiring outright."""
        from repro.flash.error_model import ErrorModel

        spec = make_spec(max_rber=4e-4, resuscitation_bits=(3, 1))
        partition = Partition(spec)
        worn = ErrorModel(native_mode(CellTechnology.PLC)).pec_for_rber(4e-4, 1.0) + 30
        partition.groups[0].pec = worn
        partition.maintain(now=1.0)
        assert partition.resuscitated_count == 1
        assert partition.groups[0].mode.operating_bits == 3
        assert partition.groups[0].capacity_gb == pytest.approx(64.0 / 20 * 3 / 5)

    def test_delete_shrinks_live_data(self):
        partition = Partition(make_spec())
        partition.host_write(10.0, now=0.0, churn=False)
        partition.host_delete(4.0)
        assert partition.live_data_gb() == pytest.approx(6.0)


class TestDevice:
    def test_step_day_advances_time(self):
        device = LifetimeDevice([make_spec()])
        device.step_day({"main": (1.0, 0.5)})
        assert device.now_years == pytest.approx(1 / 365)

    def test_empty_partition_list_rejected(self):
        with pytest.raises(ValueError):
            LifetimeDevice([])

    def test_multi_partition_routing(self):
        sys_spec = make_spec(name="sys", capacity_gb=32.0)
        spare_spec = make_spec(name="spare", capacity_gb=32.0, wear_leveling=False)
        device = LifetimeDevice([sys_spec, spare_spec])
        device.step_day({"sys": (2.0, 1.0), "spare": (1.0, 0.0)})
        assert device.partition("sys").mean_pec() > 0
        assert device.partition("spare").mean_pec() > 0
