"""Seed robustness: headline outcomes hold across workload randomness."""

from __future__ import annotations

import pytest

from repro.sim.baselines import build_sos, build_tlc_baseline
from repro.sim.engine import run_lifetime
from repro.workloads.mobile import MobileWorkload, WorkloadConfig

SEEDS = (1, 2, 3, 4, 5)
YEARS = 2


@pytest.fixture(scope="module")
def results():
    out = []
    for seed in SEEDS:
        summaries = MobileWorkload(
            WorkloadConfig(mix="typical", days=YEARS * 365, seed=seed)
        ).daily_summaries()
        out.append(
            (run_lifetime(build_sos(64.0), summaries),
             run_lifetime(build_tlc_baseline(64.0), summaries))
        )
    return out


class TestSeedRobustness:
    def test_sos_survives_every_seed(self, results):
        for sos, _tlc in results:
            assert sos.survived()

    def test_quality_band_is_tight(self, results):
        qualities = [sos.final.spare_quality for sos, _ in results]
        assert min(qualities) > 0.9
        assert max(qualities) - min(qualities) < 0.05

    def test_carbon_is_seed_independent(self, results):
        """Embodied carbon is a design property, not a workload outcome."""
        values = {round(sos.embodied_kg, 9) for sos, _ in results}
        assert len(values) == 1

    def test_wear_ordering_holds_every_seed(self, results):
        """SOS SYS always wears faster than TLC (denser cells), never
        close to exhaustion under typical use."""
        for sos, tlc in results:
            assert sos.final.sys_wear_fraction > tlc.final.sys_wear_fraction
            assert sos.final.sys_wear_fraction < 0.5

    def test_wear_variance_is_moderate(self, results):
        wears = [sos.final.sys_wear_fraction for sos, _ in results]
        assert max(wears) / min(wears) < 1.5
