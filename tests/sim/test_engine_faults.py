"""Fault plans through the lifetime engine: transparency, counters, replay."""

from __future__ import annotations

import pytest

from repro.faults import FaultConfig, FaultPlan
from repro.runner import Sweep, run_sweep
from repro.runner.points import lifetime_point
from repro.sim.baselines import build_sos, build_tlc_baseline
from repro.sim.engine import run_lifetime
from repro.workloads.mobile import MobileWorkload, WorkloadConfig

DAYS = 240
SEED = 13


def _summaries():
    return MobileWorkload(
        WorkloadConfig(mix="typical", days=DAYS, seed=SEED)
    ).daily_summaries()


def _targets(build):
    return {
        name: partition.spec.n_groups
        for name, partition in build.device.partitions.items()
    }


def _plan(config: FaultConfig, build, seed: int = SEED) -> FaultPlan:
    return FaultPlan.generate(config, seed=seed, horizon_days=DAYS,
                              targets=_targets(build))


class TestZeroRateTransparency:
    def test_zero_plan_is_bit_identical_to_no_plan(self):
        bare = run_lifetime(build_sos(32.0), _summaries())
        plan = _plan(FaultConfig(), build_sos(32.0))
        gated = run_lifetime(build_sos(32.0), _summaries(), fault_plan=plan)
        assert plan.empty
        assert bare.samples == gated.samples  # bit-identical, not approx
        assert bare.final == gated.final
        assert gated.faults.total_events == 0
        assert bare.faults is None  # no plan -> no counters attached


class TestFaultEffects:
    def test_infant_mortality_retires_groups(self):
        config = FaultConfig(block_infant_mortality=0.3, infant_window_days=60)
        build = build_tlc_baseline(32.0)
        result = run_lifetime(
            build, _summaries(), fault_plan=_plan(config, build)
        )
        control = run_lifetime(build_tlc_baseline(32.0), _summaries())
        assert result.faults.infant_deaths > 0
        assert result.final.retired_groups >= result.faults.infant_deaths
        assert result.final.capacity_gb < control.final.capacity_gb

    def test_transient_read_accounting_balances(self):
        config = FaultConfig(transient_read_rate=0.8, max_read_retries=2)
        build = build_sos(32.0)
        result = run_lifetime(
            build, _summaries(), fault_plan=_plan(config, build)
        )
        faults = result.faults
        assert faults.transient_reads > 0
        assert (
            faults.reads_recovered + faults.reads_unrecovered
            == faults.transient_reads
        )
        assert (
            faults.read_retry_attempts
            <= config.max_read_retries * faults.transient_reads
        )

    def test_torn_programs_cost_recovery_rewrites(self):
        config = FaultConfig(power_loss_rate=0.3)
        build = build_sos(32.0)
        result = run_lifetime(
            build, _summaries(), fault_plan=_plan(config, build)
        )
        assert result.faults.torn_programs > 0
        assert result.faults.torn_rewrite_gb > 0.0

    def test_cloud_outage_defers_scrubs(self):
        config = FaultConfig(cloud_outage_rate=0.05, cloud_outage_days=5)
        build = build_sos(32.0)
        plan = _plan(config, build)
        result = run_lifetime(build, _summaries(), fault_plan=plan)
        expected_days = sum(
            1 for day in range(DAYS) if plan.in_cloud_outage(day)
        )
        n_scrubbed = sum(
            1 for p in build.device.partitions.values() if p.spec.scrub_enabled
        )
        assert expected_days > 0
        assert result.faults.cloud_outage_days == expected_days
        assert result.faults.scrubs_deferred == expected_days * n_scrubbed

    def test_device_survives_harsh_fault_population(self):
        """Graceful degradation: harsh faults shrink the device, never
        crash the simulation."""
        config = FaultConfig(
            block_infant_mortality=0.4,
            transient_read_rate=2.0,
            power_loss_rate=1.0,
            cloud_outage_rate=0.1,
        )
        build = build_sos(32.0)
        result = run_lifetime(
            build, _summaries(), fault_plan=_plan(config, build)
        )
        assert result.final.capacity_gb > 0
        assert result.faults.total_events > 0


class TestScheduleReplay:
    FAULTS = {
        "block_infant_mortality": 0.1,
        "transient_read_rate": 0.5,
        "power_loss_rate": 0.2,
        "cloud_outage_rate": 0.05,
    }

    def _sweep(self) -> Sweep:
        grid = tuple(
            {"build": name, "capacity_gb": 32.0, "mix": "typical",
             "days": 120, "workload_seed": SEED, "faults": self.FAULTS}
            for name in ("tlc_baseline", "sos")
        )
        return Sweep(name="engine-faults-replay", fn=lifetime_point,
                     grid=grid, base_seed=3)

    def test_serial_and_parallel_replay_identically(self):
        serial = run_sweep(self._sweep(), jobs=1)
        parallel = run_sweep(self._sweep(), jobs=2)
        for a, b in zip(serial.points, parallel.points):
            assert a.value.faults is not None
            assert a.value.faults.as_dict() == b.value.faults.as_dict()
            assert a.value.samples == b.value.samples
        assert any(
            p.value.faults.total_events > 0 for p in serial.points
        )

    def test_identical_inputs_identical_event_log(self):
        build = build_sos(32.0)
        config = FaultConfig(**self.FAULTS)
        a = _plan(config, build)
        b = _plan(config, build)
        assert a.event_log() == b.event_log()
        assert a.digest() == b.digest()
        assert a.digest() != _plan(config, build, seed=SEED + 1).digest()

    def test_fault_days_are_indexed_by_position(self):
        """A sliced trace replays the same schedule: fault days count
        from the start of the *run*, not the trace's day labels."""
        config = FaultConfig(block_infant_mortality=0.3, infant_window_days=10)
        full = _summaries()
        offset = full[120:]  # day labels start at 121
        build = build_tlc_baseline(32.0)
        plan = FaultPlan.generate(config, seed=SEED, horizon_days=len(offset),
                                  targets=_targets(build))
        result = run_lifetime(build, offset, fault_plan=plan)
        scheduled = {
            unit
            for day in range(10)
            for _, unit in plan.infant_deaths(day)
        }
        # every infant death scheduled in the first 10 *positions* landed
        # even though the trace's own day field starts past the window
        assert result.faults.infant_deaths == len(scheduled)
        assert result.faults.infant_deaths > 0


class TestResultShape:
    def test_faults_counters_round_trip_through_pickle(self):
        import pickle

        config = FaultConfig(transient_read_rate=0.5)
        build = build_sos(32.0)
        result = run_lifetime(
            build, _summaries(), fault_plan=_plan(config, build)
        )
        clone = pickle.loads(pickle.dumps(result))
        assert clone.faults.as_dict() == result.faults.as_dict()
        assert clone.samples == result.samples

    def test_survived_still_works_with_faults(self):
        config = FaultConfig(transient_read_rate=0.2)
        build = build_sos(32.0)
        result = run_lifetime(
            build, _summaries(), fault_plan=_plan(config, build)
        )
        assert isinstance(result.survived(), bool)
