"""Vectorized partition hot path vs a scalar per-group reference.

The partition's daily operations (write placement, quality, failure
aggregation) run as whole-array numpy expressions over the
structure-of-arrays group state.  These tests recompute each operation
the pre-vectorization way -- one scalar call per :class:`BlockGroup`
view -- and require agreement, so a future vectorization change cannot
silently alter the model.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellMode, CellTechnology, native_mode
from repro.flash.error_model import cached_error_model
from repro.sim.lifetime import HOT_GROUP_FRACTION, WL_WRITE_OVERHEAD, Partition, PartitionSpec


def make_spec(**overrides) -> PartitionSpec:
    defaults = dict(
        name="main",
        mode=native_mode(CellTechnology.PLC),
        protection=POLICIES[ProtectionLevel.STRONG],
        capacity_gb=64.0,
        wear_leveling=False,
    )
    defaults.update(overrides)
    return PartitionSpec(**defaults)


def worn_partition(**overrides) -> Partition:
    """A partition with uneven wear, ages, and live data staged on it."""
    partition = Partition(make_spec(**overrides))
    rng = np.random.default_rng(42)
    for i, group in enumerate(partition.groups):
        group.pec = float(rng.uniform(0, 800))
        group.live_gb = float(rng.uniform(0, group.capacity_gb))
        group.mean_write_time = float(rng.uniform(0, 2.0))
        if i % 7 == 3:
            group.live_gb = 0.0
    return partition


def scalar_quality(partition: Partition, now: float) -> float:
    spec = partition.spec
    weighted = total = 0.0
    for g in partition.live_groups():
        if g.live_gb <= 0:
            continue
        residual = spec.protection.residual_ber(g.rber(now))
        weighted += math.exp(-spec.quality_sensitivity * residual) * g.live_gb
        total += g.live_gb
    return weighted / total if total else 1.0


def scalar_uncorrectable(partition: Partition, now: float, page_bits: int = 4096 * 8) -> float:
    spec = partition.spec
    out = 0.0
    for g in partition.live_groups():
        if g.live_gb <= 0:
            continue
        pages = g.live_gb * 1e9 * 8 / page_bits
        out += pages * spec.protection.page_failure_prob(g.rber(now), page_bits)
    return out


class TestQualityAggregates:
    @pytest.mark.parametrize("level", [ProtectionLevel.STRONG, ProtectionLevel.WEAK,
                                       ProtectionLevel.NONE])
    def test_mean_quality_matches_scalar(self, level):
        partition = worn_partition(protection=POLICIES[level])
        assert partition.mean_quality(2.5) == pytest.approx(
            scalar_quality(partition, 2.5), rel=1e-12
        )

    def test_expected_uncorrectable_matches_scalar(self):
        partition = worn_partition()
        assert partition.expected_uncorrectable(2.5) == pytest.approx(
            scalar_uncorrectable(partition, 2.5), rel=1e-12
        )

    def test_worst_group_rber_matches_scalar(self):
        partition = worn_partition()
        expected = max(
            g.rber(2.5, extra_age=1.0)
            for g in partition.live_groups() if g.live_gb > 0
        )
        assert partition.worst_group_rber(2.5, horizon=1.0) == pytest.approx(
            expected, rel=1e-12
        )

    def test_mixed_modes_match_scalar(self):
        # heterogeneous modes (post-resuscitation state) exercise the
        # by-mode batching path instead of the uniform-mode fast path
        partition = worn_partition()
        for g in partition.groups[::3]:
            g.mode = CellMode(CellTechnology.PLC, 4)
        assert partition._uniform_mode is None
        assert partition.mean_quality(2.5) == pytest.approx(
            scalar_quality(partition, 2.5), rel=1e-12
        )

    def test_group_view_rber_matches_model(self):
        partition = worn_partition()
        g = partition.groups[0]
        model = cached_error_model(g.mode)
        assert g.rber(2.5) == model.rber(pec=g.pec, years_since_write=g.data_age(2.5))


class TestWritePlacement:
    def test_wl_write_even_share_matches_scalar(self):
        vec = Partition(make_spec(wear_leveling=True, waf=2.0))
        ref = Partition(make_spec(wear_leveling=True, waf=2.0))
        vec.host_write(10.0, now=0.5, churn=True)
        # scalar reference: every live group absorbs gb/n at WAF*(1+WL)
        n = len(ref.live_groups())
        for g in ref.live_groups():
            g.absorb_write(10.0 / n, now=0.5, waf=2.0 * (1 + WL_WRITE_OVERHEAD))
        np.testing.assert_array_equal(vec._pec, ref._pec)
        np.testing.assert_array_equal(vec._live, ref._live)
        np.testing.assert_array_equal(vec._write_time, ref._write_time)

    def test_churn_targets_hottest_groups(self):
        partition = worn_partition(wear_leveling=False)
        before = partition._pec.copy()
        hot_count = max(1, int(len(partition.live_groups()) * HOT_GROUP_FRACTION))
        expected_hot = set(
            sorted(range(len(before)), key=lambda i: -before[i])[:hot_count]
        )
        partition.host_write(5.0, now=1.0, churn=True)
        touched = set(np.flatnonzero(partition._pec != before))
        assert touched == expected_hot

    def test_append_round_robin_over_cold_groups(self):
        partition = Partition(make_spec(wear_leveling=False, n_groups=4, waf=1.0))
        for k in range(6):
            partition.host_write(1.0, now=0.0, churn=False)
        # 6 appends over 4 groups: first two groups written twice
        assert [g.pec for g in partition.groups] == pytest.approx(
            [2 / 16, 2 / 16, 1 / 16, 1 / 16]
        )

    def test_host_delete_proportional(self):
        partition = worn_partition()
        live_before = partition._live.copy()
        total = partition.live_data_gb()
        partition.host_delete(total / 4)
        np.testing.assert_allclose(partition._live, live_before * 0.75, rtol=1e-12)

    def test_retired_groups_excluded_everywhere(self):
        partition = worn_partition()
        victim = partition.groups[2]
        victim.retired = True
        victim.live_gb = 0.0
        before = victim.pec
        partition.host_write(8.0, now=1.5, churn=True)
        partition.host_write(8.0, now=1.5, churn=False)
        partition.host_delete(1.0)
        assert victim.pec == before
        assert victim.live_gb == 0.0
        assert partition.mean_quality(2.0) == pytest.approx(
            scalar_quality(partition, 2.0), rel=1e-12
        )
