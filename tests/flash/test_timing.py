"""Latency model: density scaling, retries, error-tolerant fast path."""

from __future__ import annotations

import pytest

from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.timing import TimingModel


class TestDensityScaling:
    def test_reads_slow_down_with_density(self):
        reads = [
            TimingModel(native_mode(t)).times().read_us
            for t in (CellTechnology.SLC, CellTechnology.TLC, CellTechnology.PLC)
        ]
        assert reads == sorted(reads)

    def test_programs_slow_down_with_density(self):
        progs = [
            TimingModel(native_mode(t)).times().program_us for t in CellTechnology
        ]
        assert progs == sorted(progs)

    def test_pseudo_mode_gets_lower_density_speed(self):
        """pseudo-QLC on PLC silicon performs like QLC, not like PLC."""
        pseudo = TimingModel(pseudo_mode(CellTechnology.PLC, 4)).times()
        qlc = TimingModel(native_mode(CellTechnology.QLC)).times()
        plc = TimingModel(native_mode(CellTechnology.PLC)).times()
        assert pseudo.read_us == qlc.read_us
        assert pseudo.read_us < plc.read_us

    def test_qlc_matches_early_tlc_class(self):
        """§4.5: 'performance ... of recent QLC generations matches that
        of early generation TLC memories' -- within ~3x of TLC here."""
        qlc = TimingModel(native_mode(CellTechnology.QLC)).times()
        tlc = TimingModel(native_mode(CellTechnology.TLC)).times()
        assert qlc.read_us / tlc.read_us < 3.0

    def test_erase_density_independent(self):
        times = {TimingModel(native_mode(t)).times().erase_us for t in CellTechnology}
        assert len(times) == 1


class TestRetries:
    def test_each_retry_adds_a_sense(self):
        model = TimingModel(native_mode(CellTechnology.PLC))
        base = model.read_with_retries(0)
        assert model.read_with_retries(1) == pytest.approx(2 * base)

    def test_soft_sensing_surcharge(self):
        model = TimingModel(native_mode(CellTechnology.PLC))
        assert model.read_with_retries(3) == pytest.approx(5 * model.read_with_retries(0))

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(native_mode(CellTechnology.PLC)).read_with_retries(-1)


class TestExpectedRead:
    def test_error_tolerant_read_is_nominal(self):
        """§4.5: error tolerance removes the retry path entirely."""
        model = TimingModel(native_mode(CellTechnology.PLC))
        slow = model.expected_read_us(page_failure_prob=0.5)
        fast = model.expected_read_us(page_failure_prob=0.5, error_tolerant=True)
        assert fast == model.times().read_us
        assert fast < slow

    def test_clean_pages_pay_no_retry_cost(self):
        model = TimingModel(native_mode(CellTechnology.PLC))
        assert model.expected_read_us(0.0) == pytest.approx(model.times().read_us)

    def test_expected_latency_monotone_in_failure_prob(self):
        model = TimingModel(native_mode(CellTechnology.PLC))
        values = [model.expected_read_us(p) for p in (0.0, 0.1, 0.3, 0.7, 0.99)]
        assert values == sorted(values)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(native_mode(CellTechnology.PLC)).expected_read_us(1.5)


class TestBandwidth:
    def test_sequential_bandwidth_reasonable(self):
        """PLC sequential reads should still stream media comfortably
        (tens of MB/s minimum at modest queue depth)."""
        plc = TimingModel(native_mode(CellTechnology.PLC)).times()
        bw = plc.sequential_read_mbps(page_bytes=4096, queue_depth=4)
        assert bw > 40.0

    def test_queue_depth_raises_bandwidth(self):
        plc = TimingModel(native_mode(CellTechnology.PLC)).times()
        assert plc.sequential_read_mbps(4096, 8) > plc.sequential_read_mbps(4096, 1)
