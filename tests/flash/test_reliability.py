"""Endurance table consistency with the paper's cited ratios."""

from __future__ import annotations

import pytest

from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.reliability import (
    ENDURANCE_TABLE,
    RETENTION_SPEC_YEARS,
    endurance_pec,
    retention_years,
)


class TestEnduranceTable:
    def test_slc_is_100k(self):
        """§2.2: '~100K PEC for early-generation SLC'."""
        assert ENDURANCE_TABLE[CellTechnology.SLC].rated_pec == 100_000

    def test_qlc_is_1k(self):
        """§2.2: '~1K PEC for QLC memory'."""
        assert ENDURANCE_TABLE[CellTechnology.QLC].rated_pec == 1_000

    def test_plc_vs_tlc_ratio_in_6_to_10_band(self):
        """§4.2: PLC endurance ~6-10x below TLC."""
        ratio = (
            ENDURANCE_TABLE[CellTechnology.TLC].rated_pec
            / ENDURANCE_TABLE[CellTechnology.PLC].rated_pec
        )
        assert 6 <= ratio <= 10

    def test_plc_vs_qlc_ratio_is_2(self):
        """§4.2: PLC endurance ~2x below QLC."""
        ratio = (
            ENDURANCE_TABLE[CellTechnology.QLC].rated_pec
            / ENDURANCE_TABLE[CellTechnology.PLC].rated_pec
        )
        assert ratio == pytest.approx(2.0)

    def test_endurance_strictly_decreases_with_density(self):
        pecs = [ENDURANCE_TABLE[t].rated_pec for t in CellTechnology]
        assert pecs == sorted(pecs, reverse=True)

    def test_baseline_rber_increases_with_density(self):
        rbers = [ENDURANCE_TABLE[t].baseline_rber for t in CellTechnology]
        assert rbers == sorted(rbers)


class TestPseudoModeEndurance:
    def test_native_mode_matches_table(self):
        for tech in CellTechnology:
            assert endurance_pec(native_mode(tech)) == ENDURANCE_TABLE[tech].rated_pec

    def test_pseudo_qlc_on_plc_near_native_qlc(self):
        pec = endurance_pec(pseudo_mode(CellTechnology.PLC, 4))
        native = ENDURANCE_TABLE[CellTechnology.QLC].rated_pec
        assert 0.8 * native <= pec <= native

    def test_pseudo_mode_beats_native_dense_mode(self):
        """Operating PLC as pseudo-anything must beat native PLC endurance."""
        native_plc = endurance_pec(native_mode(CellTechnology.PLC))
        for bits in (1, 2, 3, 4):
            assert endurance_pec(pseudo_mode(CellTechnology.PLC, bits)) > native_plc

    def test_pseudo_endurance_monotone_in_dropped_bits(self):
        pecs = [endurance_pec(pseudo_mode(CellTechnology.PLC, b)) for b in (4, 3, 2, 1)]
        assert pecs == sorted(pecs)


class TestRetention:
    def test_retention_keyed_on_operating_bits(self):
        assert retention_years(pseudo_mode(CellTechnology.PLC, 3)) == RETENTION_SPEC_YEARS[3]

    def test_retention_decreases_with_density(self):
        years = [RETENTION_SPEC_YEARS[b] for b in (1, 2, 3, 4, 5)]
        assert years == sorted(years, reverse=True)
