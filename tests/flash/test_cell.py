"""Cell technology and pseudo-mode semantics."""

from __future__ import annotations

import pytest

from repro.flash.cell import CellMode, CellTechnology, native_mode, pseudo_mode


class TestCellTechnology:
    def test_bits_per_cell_match_names(self):
        assert CellTechnology.SLC.bits_per_cell == 1
        assert CellTechnology.MLC.bits_per_cell == 2
        assert CellTechnology.TLC.bits_per_cell == 3
        assert CellTechnology.QLC.bits_per_cell == 4
        assert CellTechnology.PLC.bits_per_cell == 5

    def test_levels_are_powers_of_two(self):
        for tech in CellTechnology:
            assert tech.levels == 2**tech.bits_per_cell

    def test_density_gain_qlc_over_tlc_is_33_percent(self):
        """§4.1: 'Improving TLC density by 33% (QLC)'."""
        gain = CellTechnology.QLC.density_gain_over(CellTechnology.TLC)
        assert gain == pytest.approx(1 / 3)

    def test_density_gain_plc_over_tlc_is_66_percent(self):
        """§4.1: '... and 66% (PLC)'."""
        gain = CellTechnology.PLC.density_gain_over(CellTechnology.TLC)
        assert gain == pytest.approx(2 / 3)

    def test_density_gain_is_antisymmetric_in_sign(self):
        assert CellTechnology.TLC.density_gain_over(CellTechnology.PLC) < 0


class TestCellMode:
    def test_native_mode_is_not_pseudo(self):
        mode = native_mode(CellTechnology.QLC)
        assert not mode.is_pseudo
        assert mode.operating_bits == 4

    def test_pseudo_mode_is_pseudo(self):
        mode = pseudo_mode(CellTechnology.PLC, 4)
        assert mode.is_pseudo
        assert mode.name == "pQLC(PLC)"

    def test_pseudo_mode_rejects_native_density(self):
        with pytest.raises(ValueError):
            pseudo_mode(CellTechnology.PLC, 5)

    def test_mode_rejects_overdense_operation(self):
        with pytest.raises(ValueError):
            CellMode(CellTechnology.TLC, 4)

    def test_mode_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            CellMode(CellTechnology.TLC, 0)

    def test_margin_factor_doubles_per_dropped_bit(self):
        assert native_mode(CellTechnology.PLC).margin_factor == 1.0
        assert pseudo_mode(CellTechnology.PLC, 4).margin_factor == 2.0
        assert pseudo_mode(CellTechnology.PLC, 3).margin_factor == 4.0
        assert pseudo_mode(CellTechnology.PLC, 1).margin_factor == 16.0

    def test_capacity_fraction(self):
        assert pseudo_mode(CellTechnology.PLC, 4).capacity_fraction() == pytest.approx(0.8)
        assert native_mode(CellTechnology.TLC).capacity_fraction() == 1.0

    def test_pseudo_qlc_on_plc_vs_native_qlc_capacity(self):
        """Pseudo-QLC ships 4 bits/cell regardless of substrate."""
        p = pseudo_mode(CellTechnology.PLC, 4)
        n = native_mode(CellTechnology.QLC)
        assert p.operating_bits == n.operating_bits

    def test_modes_are_hashable_and_comparable(self):
        a = pseudo_mode(CellTechnology.PLC, 4)
        b = CellMode(CellTechnology.PLC, 4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != native_mode(CellTechnology.PLC)
