"""Chip-level addressing, capacity, and management operations."""

from __future__ import annotations

import pytest

from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.chip import FlashChip
from repro.flash.geometry import SMALL_GEOMETRY, Geometry


class TestConstruction:
    def test_block_count_matches_geometry(self, plc_chip):
        assert len(plc_chip.blocks) == SMALL_GEOMETRY.total_blocks

    def test_initial_capacity_is_full(self, plc_chip):
        assert plc_chip.usable_capacity_bytes() == SMALL_GEOMETRY.capacity_bytes

    def test_mode_technology_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FlashChip(
                SMALL_GEOMETRY, CellTechnology.PLC, mode=native_mode(CellTechnology.TLC)
            )

    def test_chip_can_start_in_pseudo_mode(self):
        chip = FlashChip(
            SMALL_GEOMETRY, CellTechnology.PLC, mode=pseudo_mode(CellTechnology.PLC, 4)
        )
        # capacity quantizes to whole pages per block
        pages = int(SMALL_GEOMETRY.pages_per_block * 4 / 5)
        expected = pages * SMALL_GEOMETRY.page_size_bytes * SMALL_GEOMETRY.total_blocks
        assert chip.usable_capacity_bytes() == expected


class TestOperations:
    def test_program_read_roundtrip_on_fresh_tlc(self, tlc_chip):
        payload = b"hello world".ljust(SMALL_GEOMETRY.page_size_bytes, b".")
        tlc_chip.program((3, 0), payload)
        assert tlc_chip.read_clean((3, 0)) == payload

    def test_retire_shrinks_capacity(self, plc_chip):
        """§4.3 capacity variance: retirement reduces usable capacity."""
        before = plc_chip.usable_capacity_bytes()
        plc_chip.retire_block(0)
        after = plc_chip.usable_capacity_bytes()
        assert after == before - SMALL_GEOMETRY.block_size_bytes
        assert plc_chip.retired_count() == 1

    def test_reconfigure_shrinks_capacity_proportionally(self, plc_chip):
        before = plc_chip.usable_capacity_bytes()
        plc_chip.reconfigure_block(0, pseudo_mode(CellTechnology.PLC, 3))
        kept_pages = int(SMALL_GEOMETRY.pages_per_block * 3 / 5)
        lost = (SMALL_GEOMETRY.pages_per_block - kept_pages) * SMALL_GEOMETRY.page_size_bytes
        assert plc_chip.usable_capacity_bytes() == before - lost

    def test_live_blocks_excludes_retired(self, plc_chip):
        plc_chip.retire_block(5)
        indices = [i for i, _ in plc_chip.live_blocks()]
        assert 5 not in indices
        assert len(indices) == SMALL_GEOMETRY.total_blocks - 1

    def test_advance_time_propagates_to_blocks(self, plc_chip):
        plc_chip.advance_time(1.5)
        assert plc_chip.now_years == 1.5
        plc_chip.blocks[0].program(0, b"x")
        assert plc_chip.blocks[0].page_info(0).written_at_years == 1.5

    def test_time_monotonic(self, plc_chip):
        plc_chip.advance_time(1.0)
        with pytest.raises(ValueError):
            plc_chip.advance_time(0.9)

    def test_wear_summaries(self, plc_chip):
        plc_chip.erase(0)
        plc_chip.erase(0)
        plc_chip.erase(1)
        assert plc_chip.max_pec() == 2
        assert plc_chip.mean_pec() == pytest.approx(3 / SMALL_GEOMETRY.total_blocks)


class TestGeometry:
    def test_capacity_arithmetic(self):
        g = Geometry(page_size_bytes=4096, pages_per_block=64, blocks_per_plane=16,
                     planes_per_die=2, dies=2)
        assert g.total_blocks == 64
        assert g.block_size_bytes == 4096 * 64
        assert g.capacity_bytes == 4096 * 64 * 64
        assert g.total_pages == 64 * 64

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Geometry(page_size_bytes=0)
        with pytest.raises(ValueError):
            Geometry(dies=0)
