"""Voltage-distribution model and its agreement with the empirical model.

The empirical :class:`ErrorModel` drives all experiments; the
first-principles :class:`VoltageModel` validates it -- both must agree
on every qualitative ordering the paper's arguments rest on.
"""

from __future__ import annotations

import pytest

from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.error_model import ErrorModel
from repro.flash.voltage import VoltageModel


class TestVoltagePhysics:
    def test_denser_modes_have_tighter_spacing(self):
        spacings = [
            VoltageModel(native_mode(t)).spacing
            for t in (CellTechnology.SLC, CellTechnology.TLC, CellTechnology.PLC)
        ]
        assert spacings == sorted(spacings, reverse=True)

    def test_rber_increases_with_wear(self):
        model = VoltageModel(native_mode(CellTechnology.PLC))
        values = [model.rber(pec) for pec in (0, 100, 300, 500)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_rber_increases_with_retention(self):
        model = VoltageModel(native_mode(CellTechnology.PLC))
        values = [model.rber(200, years) for years in (0, 0.5, 1, 2)]
        assert values == sorted(values)

    def test_negative_inputs_rejected(self):
        model = VoltageModel(native_mode(CellTechnology.TLC))
        with pytest.raises(ValueError):
            model.sigma(-1)
        with pytest.raises(ValueError):
            model.drift(0, -1)

    def test_rber_bounded(self):
        model = VoltageModel(native_mode(CellTechnology.PLC))
        assert model.rber(100_000, 50.0) <= 0.5


class TestAgreementWithEmpiricalModel:
    """Qualitative orderings must match between the two models."""

    @pytest.mark.parametrize("pec,years", [(0, 0), (250, 0.5), (450, 1.0)])
    def test_density_ordering_matches(self, pec, years):
        techs = (CellTechnology.TLC, CellTechnology.QLC, CellTechnology.PLC)
        voltage = [VoltageModel(native_mode(t)).rber(pec, years) for t in techs]
        empirical = [ErrorModel(native_mode(t)).rber(pec, years) for t in techs]
        assert voltage == sorted(voltage)
        assert empirical == sorted(empirical)

    def test_pseudo_mode_relief_matches(self):
        """Both models: pseudo-QLC on PLC silicon beats native PLC."""
        pec = 400
        v_native = VoltageModel(native_mode(CellTechnology.PLC)).rber(pec)
        v_pseudo = VoltageModel(pseudo_mode(CellTechnology.PLC, 4)).rber(pec)
        e_native = ErrorModel(native_mode(CellTechnology.PLC)).rber(pec)
        e_pseudo = ErrorModel(pseudo_mode(CellTechnology.PLC, 4)).rber(pec)
        assert v_pseudo < v_native
        assert e_pseudo < e_native

    def test_resuscitation_ladder_monotone_in_both(self):
        """Dropping density on worn PLC silicon strictly reduces RBER."""
        worn = 600
        v = [
            VoltageModel(pseudo_mode(CellTechnology.PLC, bits)).rber(worn)
            for bits in (4, 3, 2, 1)
        ]
        e = [
            ErrorModel(pseudo_mode(CellTechnology.PLC, bits)).rber(worn)
            for bits in (4, 3, 2, 1)
        ]
        assert v == sorted(v, reverse=True)
        assert e == sorted(e, reverse=True)

    def test_wear_retention_interaction_same_sign(self):
        """Retention hurts more on worn cells in both models."""
        for model_cls in (VoltageModel, ErrorModel):
            model = model_cls(native_mode(CellTechnology.PLC))
            fresh_delta = model.rber(0, 1.0) - model.rber(0, 0.0)
            worn_delta = model.rber(400, 1.0) - model.rber(400, 0.0)
            assert worn_delta > fresh_delta
