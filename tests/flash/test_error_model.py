"""RBER model structure: monotonicity, pseudo-mode relief, inversion."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.error_model import ErrorModel


@pytest.fixture
def plc_model() -> ErrorModel:
    return ErrorModel(native_mode(CellTechnology.PLC))


class TestMonotonicity:
    def test_rber_increases_with_wear(self, plc_model):
        values = [plc_model.rber(pec) for pec in (0, 100, 250, 500, 1000)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_rber_increases_with_retention_age(self, plc_model):
        values = [plc_model.rber(100, years_since_write=t) for t in (0, 0.5, 1, 2, 5)]
        assert values == sorted(values)

    def test_rber_increases_with_read_disturb(self, plc_model):
        values = [plc_model.rber(100, reads_since_write=r) for r in (0, 1e4, 1e5, 1e6)]
        assert values == sorted(values)

    def test_rber_capped_at_half(self, plc_model):
        assert plc_model.rber(1_000_000, years_since_write=100) == 0.5

    def test_negative_stress_rejected(self, plc_model):
        with pytest.raises(ValueError):
            plc_model.rber(-1)
        with pytest.raises(ValueError):
            plc_model.rber(0, years_since_write=-0.1)


class TestTechnologyOrdering:
    def test_denser_technology_has_higher_rber_at_same_absolute_wear(self):
        """At equal PEC and age, PLC must be noisier than TLC than SLC."""
        pec, age = 400, 0.5
        rbers = [
            ErrorModel(native_mode(t)).rber(pec, age)
            for t in (CellTechnology.SLC, CellTechnology.TLC, CellTechnology.PLC)
        ]
        assert rbers == sorted(rbers)

    def test_pseudo_qlc_on_plc_quieter_than_native_plc(self):
        native = ErrorModel(native_mode(CellTechnology.PLC))
        pseudo = ErrorModel(pseudo_mode(CellTechnology.PLC, 4))
        for pec in (0, 200, 500):
            assert pseudo.rber(pec) < native.rber(pec)

    def test_resuscitation_reduces_rber_at_same_wear(self):
        """§4.3: a worn PLC block reborn as pseudo-TLC must be usable."""
        worn_pec = 600  # past native PLC rating
        native = ErrorModel(native_mode(CellTechnology.PLC)).rber(worn_pec)
        ptlc = ErrorModel(pseudo_mode(CellTechnology.PLC, 3)).rber(worn_pec)
        assert ptlc < native / 10


class TestInversion:
    def test_pec_for_rber_inverts_rber(self, plc_model):
        target = 1e-3
        pec = plc_model.pec_for_rber(target)
        assert plc_model.rber(pec) == pytest.approx(target, rel=1e-3)

    def test_pec_for_rber_zero_when_already_exceeded(self, plc_model):
        tiny = plc_model.rber(0) / 2
        assert plc_model.pec_for_rber(tiny) == 0.0

    def test_pec_for_rber_rejects_nonpositive_target(self, plc_model):
        with pytest.raises(ValueError):
            plc_model.pec_for_rber(0.0)

    def test_pec_for_rber_with_retention_is_smaller(self, plc_model):
        """Aged data reaches any RBER threshold at lower wear."""
        fresh = plc_model.pec_for_rber(1e-3, years_since_write=0.0)
        aged = plc_model.pec_for_rber(1e-3, years_since_write=1.0)
        assert aged < fresh


class TestBreakdown:
    def test_breakdown_product_equals_total(self, plc_model):
        b = plc_model.breakdown(300, 0.7, 1e5)
        expected = b.baseline * b.wear_factor * b.retention_factor * b.read_disturb_factor
        assert b.total == pytest.approx(expected)

    def test_fresh_unstressd_breakdown_is_baseline(self, plc_model):
        b = plc_model.breakdown(0, 0, 0)
        assert b.wear_factor == 1.0
        assert b.retention_factor == 1.0
        assert b.read_disturb_factor == 1.0


@given(
    pec=st.floats(min_value=0, max_value=5000),
    age=st.floats(min_value=0, max_value=10),
    reads=st.floats(min_value=0, max_value=1e7),
)
@settings(max_examples=200, deadline=None)
def test_rber_always_in_valid_range(pec, age, reads):
    """Property: RBER is a probability for any stress point."""
    model = ErrorModel(native_mode(CellTechnology.QLC))
    value = model.rber(pec, age, reads)
    assert 0.0 < value <= 0.5
