"""Bit-exact block semantics: NAND rules, modes, error injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash.block import Block, ProgramError
from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.geometry import SMALL_GEOMETRY


def make_block(mode=None, seed=7) -> Block:
    mode = mode or native_mode(CellTechnology.TLC)
    return Block(SMALL_GEOMETRY, mode, np.random.default_rng(seed))


class TestProgramRules:
    def test_sequential_program_required(self):
        block = make_block()
        block.program(0, b"a")
        with pytest.raises(ProgramError):
            block.program(2, b"c")

    def test_no_rewrite_without_erase(self):
        block = make_block()
        block.program(0, b"a")
        with pytest.raises(ProgramError):
            block.program(0, b"b")

    def test_erase_increments_pec_and_resets(self):
        block = make_block()
        block.program(0, b"a")
        assert block.pec == 0
        block.erase()
        assert block.pec == 1
        assert not block.is_programmed(0)
        block.program(0, b"b")  # reprogram allowed after erase

    def test_oversized_payload_rejected(self):
        block = make_block()
        with pytest.raises(ProgramError):
            block.program(0, b"x" * (SMALL_GEOMETRY.page_size_bytes + 1))

    def test_retired_block_refuses_all_ops(self):
        block = make_block()
        block.retire()
        with pytest.raises(ProgramError):
            block.program(0, b"a")
        with pytest.raises(ProgramError):
            block.erase()

    def test_read_unprogrammed_page_fails(self):
        block = make_block()
        with pytest.raises(ProgramError):
            block.read(0)


class TestPseudoModeCapacity:
    def test_pseudo_mode_exposes_fewer_pages_same_size(self):
        native = make_block(native_mode(CellTechnology.PLC))
        pseudo = make_block(pseudo_mode(CellTechnology.PLC, 4))
        assert pseudo.page_capacity_bytes == native.page_capacity_bytes
        assert pseudo.usable_pages == int(native.usable_pages * 4 / 5)

    def test_program_beyond_usable_pages_fails(self):
        block = make_block(pseudo_mode(CellTechnology.PLC, 1))
        for i in range(block.usable_pages):
            block.program(i, b"d")
        with pytest.raises(ProgramError):
            block.program(block.usable_pages, b"d")

    def test_free_pages_tracks_usable(self):
        block = make_block(pseudo_mode(CellTechnology.PLC, 4))
        assert block.free_pages == block.usable_pages
        block.program(0, b"a")
        assert block.free_pages == block.usable_pages - 1


class TestReconfigure:
    def test_reconfigure_requires_empty_block(self):
        block = make_block(native_mode(CellTechnology.PLC))
        block.program(0, b"a")
        with pytest.raises(ProgramError):
            block.reconfigure(pseudo_mode(CellTechnology.PLC, 3))

    def test_reconfigure_preserves_pec(self):
        block = make_block(native_mode(CellTechnology.PLC))
        for _ in range(5):
            block.erase()
        block.reconfigure(pseudo_mode(CellTechnology.PLC, 3))
        assert block.pec == 5
        assert block.mode.operating_bits == 3

    def test_reconfigure_cannot_change_technology(self):
        block = make_block(native_mode(CellTechnology.PLC))
        with pytest.raises(ProgramError):
            block.reconfigure(native_mode(CellTechnology.TLC))


class TestErrorInjection:
    def test_fresh_slc_reads_clean(self):
        """SLC baseline RBER 1e-8 over a 4 Kb page: errors vanishingly rare."""
        block = make_block(native_mode(CellTechnology.SLC))
        payload = bytes(range(256)) * 2
        block.program(0, payload)
        assert block.read(0)[: len(payload)] == payload

    def test_worn_aged_plc_reads_dirty(self):
        """A PLC block at 3x rated wear reading year-old data must show errors."""
        block = make_block(native_mode(CellTechnology.PLC))
        block.pec = block.rated_pec * 3
        block.program(0, b"\x00" * SMALL_GEOMETRY.page_size_bytes)
        block.advance_time(1.0)
        noisy = block.read(0)
        assert noisy != b"\x00" * SMALL_GEOMETRY.page_size_bytes

    def test_read_clean_is_oracle(self):
        block = make_block(native_mode(CellTechnology.PLC))
        block.pec = block.rated_pec * 3
        payload = b"\xaa" * SMALL_GEOMETRY.page_size_bytes
        block.program(0, payload)
        assert block.read_clean(0) == payload

    def test_rber_now_matches_error_model_shape(self):
        block = make_block(native_mode(CellTechnology.QLC))
        block.program(0, b"a")
        fresh = block.rber_now(0)
        block.advance_time(2.0)
        aged = block.rber_now(0)
        assert aged > fresh

    def test_time_cannot_go_backwards(self):
        block = make_block()
        block.advance_time(1.0)
        with pytest.raises(ValueError):
            block.advance_time(0.5)

    def test_reads_accumulate_disturb_counter(self):
        block = make_block()
        block.program(0, b"a")
        for _ in range(5):
            block.read(0)
        assert block.page_info(0).reads_since_write == 5
        assert block.stats.reads == 5
