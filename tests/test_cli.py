"""CLI smoke tests: every subcommand runs and prints its table."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_density(self, capsys):
        assert main(["density"]) == 0
        out = capsys.readouterr().out
        assert "density gain vs TLC" in out
        assert "50.0%" in out

    def test_density_custom_split(self, capsys):
        main(["density", "--spare-fraction", "0.75"])
        assert "75% SPARE" in capsys.readouterr().out

    def test_project(self, capsys):
        main(["project"])
        out = capsys.readouterr().out
        assert "2021" in out and "2030" in out

    def test_market(self, capsys):
        main(["market"])
        out = capsys.readouterr().out
        assert "smartphone" in out
        assert "per decade" in out

    def test_credits(self, capsys):
        main(["credits"])
        out = capsys.readouterr().out
        assert "TLC" in out and "PLC" in out
        assert "39.5%" in out

    def test_lifetime_short(self, capsys):
        main(["lifetime", "--years", "1", "--mix", "light"])
        out = capsys.readouterr().out
        assert "sos" in out
        assert "tlc_baseline" in out

    def test_classify_small(self, capsys):
        main(["classify", "--files", "800"])
        out = capsys.readouterr().out
        assert "auto-delete accuracy" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_lifetime_with_runner_flags(self, capsys):
        assert main([
            "lifetime", "--years", "1", "--mix", "light",
            "--jobs", "2", "--retries", "1", "--timeout", "600",
            "--keep-going",
        ]) == 0
        out = capsys.readouterr().out
        assert "sos" in out
        assert "failed" not in out

    def test_faults_selftest(self, capsys):
        """Tier-1 CI smoke: deterministic fault-plan replay end to end."""
        assert main(["faults", "selftest"]) == 0
        out = capsys.readouterr().out
        assert "plan determinism" in out
        assert "zero-rate transparency" in out
        assert "serial == parallel replay" in out
        assert "crash containment" in out
        assert "selftest passed" in out
        assert "FAIL" not in out

    def test_faults_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["faults"])
