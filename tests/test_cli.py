"""CLI smoke tests: every subcommand runs and prints its table."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_density(self, capsys):
        assert main(["density"]) == 0
        out = capsys.readouterr().out
        assert "density gain vs TLC" in out
        assert "50.0%" in out

    def test_density_custom_split(self, capsys):
        main(["density", "--spare-fraction", "0.75"])
        assert "75% SPARE" in capsys.readouterr().out

    def test_project(self, capsys):
        main(["project"])
        out = capsys.readouterr().out
        assert "2021" in out and "2030" in out

    def test_market(self, capsys):
        main(["market"])
        out = capsys.readouterr().out
        assert "smartphone" in out
        assert "per decade" in out

    def test_credits(self, capsys):
        main(["credits"])
        out = capsys.readouterr().out
        assert "TLC" in out and "PLC" in out
        assert "39.5%" in out

    def test_lifetime_short(self, capsys):
        main(["lifetime", "--years", "1", "--mix", "light"])
        out = capsys.readouterr().out
        assert "sos" in out
        assert "tlc_baseline" in out

    def test_classify_small(self, capsys):
        main(["classify", "--files", "800"])
        out = capsys.readouterr().out
        assert "auto-delete accuracy" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_lifetime_with_runner_flags(self, capsys):
        assert main([
            "lifetime", "--years", "1", "--mix", "light",
            "--jobs", "2", "--retries", "1", "--timeout", "600",
            "--keep-going",
        ]) == 0
        out = capsys.readouterr().out
        assert "sos" in out
        assert "failed" not in out

    def test_faults_selftest(self, capsys):
        """Tier-1 CI smoke: deterministic fault-plan replay end to end."""
        assert main(["faults", "selftest"]) == 0
        out = capsys.readouterr().out
        assert "plan determinism" in out
        assert "zero-rate transparency" in out
        assert "serial == parallel replay" in out
        assert "crash containment" in out
        assert "selftest passed" in out
        assert "FAIL" not in out

    def test_faults_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["faults"])


from repro.runner.points import lifetime_point as _real_lifetime_point  # noqa: E402


def _fail_sos_lifetime(params: dict, seed: int):
    """Module-level so fork workers can unpickle it by qualname."""
    if params["build"] == "sos":
        raise RuntimeError("injected: sos point fails")
    return _real_lifetime_point(params, seed)


def _fail_every_lifetime(params: dict, seed: int):
    raise RuntimeError("injected: every point fails")


class TestFtlFidelity:
    """``population --fidelity ftl``: the page-level fleet from the CLI."""

    def test_population_ftl_smoke(self, capsys):
        code = main([
            "population", "--fidelity", "ftl", "--devices", "6",
            "--years", "0.12", "--shard-size", "3", "--chunk", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "6 (2 shard(s) of <= 3, chunk 3)" in out
        assert "median wear" in out

    def test_compare_scalar_rejects_ftl_fidelity(self, capsys):
        code = main([
            "population", "--fidelity", "ftl", "--compare-scalar",
            "--devices", "4", "--years", "0.1",
        ])
        assert code == 2
        assert "cannot be combined" in capsys.readouterr().out


class TestExitCodes:
    """The 0 ok / 1 partial / 2 failed ladder scripts and CI gate on."""

    def test_ladder_arithmetic(self):
        from repro.cli import _run_exit_code

        assert _run_exit_code(completed=5, failed=0) == 0
        assert _run_exit_code(completed=3, failed=2) == 1
        assert _run_exit_code(completed=0, failed=4) == 2

    def test_keep_going_with_failed_points_exits_1(self, monkeypatch, capsys):
        import repro.runner.points as points

        monkeypatch.setattr(points, "lifetime_point", _fail_sos_lifetime)
        code = main([
            "lifetime", "--years", "1", "--mix", "light",
            "--jobs", "2", "--retries", "0", "--keep-going",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "1 point(s) failed" in out
        assert "sos" in out  # the failed point is named, not swallowed
        assert "tlc_baseline" in out  # the surviving points still print

    def test_keep_going_with_every_point_failed_exits_2(
        self, monkeypatch, capsys
    ):
        import repro.runner.points as points

        monkeypatch.setattr(points, "lifetime_point", _fail_every_lifetime)
        code = main([
            "lifetime", "--years", "1", "--mix", "light",
            "--jobs", "2", "--retries", "0", "--keep-going",
        ])
        assert code == 2
        assert "point(s) failed" in capsys.readouterr().out

    def test_submit_without_gateway_exits_3(self, capsys):
        # nothing listens on port 9 (discard); transport failure is the
        # fourth rung -- distinct from a job that ran and failed
        code = main([
            "submit", "population", "--gateway", "127.0.0.1:9",
            "--devices", "10", "--years", "0.1",
        ])
        assert code == 3
        assert "error:" in capsys.readouterr().out


class TestObsCli:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        """One observed lifetime run shared by the obs CLI tests."""
        run = tmp_path_factory.mktemp("obsrun")
        assert main([
            "lifetime", "--years", "1", "--mix", "light", "--jobs", "2",
            "--trace", str(run / "trace.jsonl"),
            "--metrics-json", str(run / "metrics.json"),
        ]) == 0
        return run

    def test_lifetime_writes_both_artifacts(self, run_dir):
        import json

        payload = json.loads((run_dir / "metrics.json").read_text())
        assert payload["schema"] == "repro.obs.metrics/v1"
        assert payload["metrics"]["counters"]["engine.days"] == 4 * 365
        assert (run_dir / "trace.jsonl").exists()

    def test_obs_report_renders_run_directory(self, run_dir, capsys):
        assert main(["obs", "report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "phase spans" in out
        assert "engine.run" in out
        assert "counters" in out

    def test_obs_report_single_metrics_file(self, run_dir, capsys):
        assert main(["obs", "report", str(run_dir / "metrics.json")]) == 0
        assert "engine.run" in capsys.readouterr().out

    def test_obs_report_empty_directory_fails(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path)]) == 1

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["obs"])

    def test_lifetime_profile_writes_stats(self, tmp_path, capsys):
        import pstats

        stats_path = tmp_path / "profile.pstats"
        assert main([
            "lifetime", "--years", "1", "--mix", "light",
            "--profile", str(stats_path),
        ]) == 0
        assert "wrote cProfile stats" in capsys.readouterr().out
        assert pstats.Stats(str(stats_path)).total_calls > 0
