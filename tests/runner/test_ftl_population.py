"""FTL-fidelity population points: per-device identity and chunking.

``ftl_population_observables`` replays each device through the
page-mapped FTL; these tests pin that a device's outcome is a pure
function of its ``(mix, workload seed, days, capacity)`` identity --
so any chunking of a population concatenates to the same columns --
and that the point wrapper returns the ``wear`` column unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ftl.replay import FtlReplayConfig, replay
from repro.runner.points import (
    ftl_population_observables,
    ftl_population_point,
)

DAYS = 20
MIXES = ["light", "typical", "heavy", "typical", "light", "heavy"]
SEEDS = [1000, 1001, 1002, 1003, 1004, 1005]


def _params(lo: int, hi: int) -> dict:
    return {
        "mixes": MIXES[lo:hi],
        "workload_seeds": SEEDS[lo:hi],
        "capacity_gb": 64.0,
        "days": DAYS,
    }


def test_columns_are_chunk_invariant():
    whole = ftl_population_observables(_params(0, 6), seed=0)
    pieces = [
        ftl_population_observables(_params(lo, hi), seed=0)
        for lo, hi in ((0, 1), (1, 4), (4, 6))
    ]
    for name, column in whole.items():
        stitched = np.concatenate([p[name] for p in pieces])
        assert np.array_equal(column, stitched), name


def test_devices_match_direct_replay():
    obs = ftl_population_observables(_params(0, 3), seed=77)
    for u in range(3):
        direct = replay(
            FtlReplayConfig(mix=MIXES[u], days=DAYS, capacity_gb=64.0,
                            seed=SEEDS[u])
        )
        assert obs["wear"][u] == direct.mean_wear
        assert obs["max_wear"][u] == direct.max_wear
        assert obs["gc_erases"][u] == direct.stats.gc_erases
        assert obs["gc_migrations"][u] == direct.stats.gc_migrations
        assert obs["host_writes"][u] == direct.stats.host_writes


def test_point_returns_the_wear_column():
    params = _params(0, 3)
    assert ftl_population_point(params, seed=0) == \
        ftl_population_observables(params, seed=0)["wear"].tolist()


def test_column_dtypes_fit_the_result_store():
    obs = ftl_population_observables(_params(0, 2), seed=0)
    assert obs["wear"].dtype == np.float64
    assert obs["max_wear"].dtype == np.float64
    for name in ("gc_erases", "gc_migrations", "wl_migrations",
                 "host_writes", "retired_blocks"):
        assert obs[name].dtype == np.int64, name


def test_mismatched_device_lists_are_rejected():
    with pytest.raises(ValueError, match="parallel"):
        ftl_population_observables(
            {"mixes": ["light"], "workload_seeds": [1, 2],
             "capacity_gb": 64.0, "days": 5},
            seed=0,
        )
