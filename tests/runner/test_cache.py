"""Stable hashing and the pickle-per-key result cache."""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.runner import CacheEntry, ResultCache, stable_key


class TestStableKey:
    def test_deterministic(self):
        obj = {"sweep": "s", "params": {"a": 1, "b": [1, 2.5, "x"]}, "seed": 7}
        assert stable_key(obj) == stable_key(obj)

    def test_dict_order_insensitive(self):
        assert stable_key({"a": 1, "b": 2}) == stable_key({"b": 2, "a": 1})

    def test_tuple_equals_list(self):
        assert stable_key({"g": (1, 2)}) == stable_key({"g": [1, 2]})

    def test_value_sensitivity(self):
        base = stable_key({"a": 1})
        assert stable_key({"a": 2}) != base
        assert stable_key({"b": 1}) != base

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(TypeError, match="not cache-keyable"):
            stable_key({"fn": object()})

    def test_rejects_non_string_dict_keys(self):
        with pytest.raises(TypeError, match="must be str"):
            stable_key({1: "x"})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        assert cache.load(key) is None
        cache.store(key, {"answer": 42}, wall_s=0.5)
        assert cache.load(key) == CacheEntry(value={"answer": 42}, wall_s=0.5)

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        cache.store(key, "value", wall_s=0.1)
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        assert cache.load(key) is None

    def test_keys_isolate_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(stable_key({"p": 1}), "one", wall_s=0.1)
        cache.store(stable_key({"p": 2}), "two", wall_s=0.1)
        assert cache.load(stable_key({"p": 1})).value == "one"
        assert cache.load(stable_key({"p": 2})).value == "two"


class TestCrashConsistency:
    """A torn or stale cache file is a miss, not an error."""

    def test_truncated_pickle_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        cache.store(key, {"big": list(range(1000))}, wall_s=0.1)
        path = tmp_path / f"{key}.pkl"
        # tear the file mid-write, as a killed process would
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.load(key) is None

    def test_wrong_payload_shape_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        (tmp_path / f"{key}.pkl").write_bytes(pickle.dumps({"no": "value"}))
        assert cache.load(key) is None

    @pytest.mark.parametrize(
        ("raw", "raises"),
        [
            # protocol-0 GLOBAL naming an attribute this module lost
            (b"crepro.runner.cache\nClassThatNeverExisted\n.", AttributeError),
            # GLOBAL naming a module that no longer imports
            (b"cmodule_that_never_existed_xyz\nKlass\n.", ModuleNotFoundError),
            # REDUCE with a bad call signature (class __init__ changed)
            (b"cbuiltins\nabs\n(tR.", TypeError),
        ],
        ids=["attribute-gone", "module-gone", "signature-changed"],
    )
    def test_stale_class_layout_is_a_miss(self, tmp_path, raw, raises):
        # the crafted bytes really do raise what a stale pickle would
        with pytest.raises(raises):
            pickle.loads(raw)
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        (tmp_path / f"{key}.pkl").write_bytes(raw)
        assert cache.load(key) is None

    def test_stale_tmp_files_swept_on_construction(self, tmp_path):
        stale = tmp_path / "deadbeef.tmp"
        stale.write_bytes(b"half a write")
        two_hours_ago = time.time() - 7200
        os.utime(stale, (two_hours_ago, two_hours_ago))
        fresh = tmp_path / "cafef00d.tmp"
        fresh.write_bytes(b"a write in progress")
        ResultCache(tmp_path)
        assert not stale.exists()  # orphan from a killed writer: gone
        assert fresh.exists()  # young enough to belong to a live writer

    def test_tmp_cleanup_ignores_real_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        cache.store(key, "kept", wall_s=0.1)
        old = time.time() - 7200
        os.utime(tmp_path / f"{key}.pkl", (old, old))
        assert cache.remove_stale_tmp() == 0
        assert cache.load(key).value == "kept"

    def test_store_failure_leaves_no_tmp_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(Exception):
            cache.store(stable_key({"p": 1}), lambda: None, wall_s=0.1)
        assert list(tmp_path.glob("*.tmp")) == []
