"""Stable hashing and the framed-record-per-key result cache."""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.runner import CacheEntry, ResultCache, stable_key


class TestStableKey:
    def test_deterministic(self):
        obj = {"sweep": "s", "params": {"a": 1, "b": [1, 2.5, "x"]}, "seed": 7}
        assert stable_key(obj) == stable_key(obj)

    def test_dict_order_insensitive(self):
        assert stable_key({"a": 1, "b": 2}) == stable_key({"b": 2, "a": 1})

    def test_tuple_equals_list(self):
        assert stable_key({"g": (1, 2)}) == stable_key({"g": [1, 2]})

    def test_value_sensitivity(self):
        base = stable_key({"a": 1})
        assert stable_key({"a": 2}) != base
        assert stable_key({"b": 1}) != base

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(TypeError, match="not cache-keyable"):
            stable_key({"fn": object()})

    def test_rejects_non_string_dict_keys(self):
        with pytest.raises(TypeError, match="must be str"):
            stable_key({1: "x"})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite_floats(self, bad):
        # NaN != NaN would make a key that can never hit, and JSON's
        # NaN/Infinity spellings aren't canonical across encoders
        with pytest.raises(ValueError, match="finite"):
            stable_key({"x": bad})

    def test_rejects_non_finite_floats_nested(self):
        with pytest.raises(ValueError, match="finite"):
            stable_key({"grid": [{"waf": [1.0, float("nan")]}]})

    def test_negative_zero_canonicalized(self):
        # -0.0 == 0.0 in every comparison, so the keys must collide too
        # (json would render them differently: "-0.0" vs "0.0")
        assert stable_key({"x": -0.0}) == stable_key({"x": 0.0})
        assert stable_key({"x": [-0.0, 1.0]}) == stable_key({"x": [0.0, 1.0]})

    def test_ordinary_floats_still_distinct(self):
        assert stable_key({"x": 0.1}) != stable_key({"x": 0.2})
        assert stable_key({"x": -1.5}) != stable_key({"x": 1.5})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        assert cache.load(key) is None
        cache.store(key, {"answer": 42}, wall_s=0.5)
        assert cache.load(key) == CacheEntry(value={"answer": 42}, wall_s=0.5)

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        cache.store(key, "value", wall_s=0.1)
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        assert cache.load(key) is None

    def test_keys_isolate_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(stable_key({"p": 1}), "one", wall_s=0.1)
        cache.store(stable_key({"p": 2}), "two", wall_s=0.1)
        assert cache.load(stable_key({"p": 1})).value == "one"
        assert cache.load(stable_key({"p": 2})).value == "two"


class TestCrashConsistency:
    """A torn or stale cache file is a miss, not an error."""

    def test_truncated_pickle_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        cache.store(key, {"big": list(range(1000))}, wall_s=0.1)
        path = tmp_path / f"{key}.pkl"
        # tear the file mid-write, as a killed process would
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.load(key) is None

    def test_wrong_payload_shape_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        (tmp_path / f"{key}.pkl").write_bytes(pickle.dumps({"no": "value"}))
        assert cache.load(key) is None

    @pytest.mark.parametrize(
        ("raw", "raises"),
        [
            # protocol-0 GLOBAL naming an attribute this module lost
            (b"crepro.runner.cache\nClassThatNeverExisted\n.", AttributeError),
            # GLOBAL naming a module that no longer imports
            (b"cmodule_that_never_existed_xyz\nKlass\n.", ModuleNotFoundError),
            # REDUCE with a bad call signature (class __init__ changed)
            (b"cbuiltins\nabs\n(tR.", TypeError),
        ],
        ids=["attribute-gone", "module-gone", "signature-changed"],
    )
    def test_stale_class_layout_is_a_miss(self, tmp_path, raw, raises):
        # the crafted bytes really do raise what a stale pickle would
        with pytest.raises(raises):
            pickle.loads(raw)
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        (tmp_path / f"{key}.pkl").write_bytes(raw)
        assert cache.load(key) is None

    def test_stale_tmp_files_swept_when_requested(self, tmp_path):
        stale = tmp_path / "deadbeef.tmp"
        stale.write_bytes(b"half a write")
        two_hours_ago = time.time() - 7200
        os.utime(stale, (two_hours_ago, two_hours_ago))
        fresh = tmp_path / "cafef00d.tmp"
        fresh.write_bytes(b"a write in progress")
        ResultCache(tmp_path, scan_stale_tmp=True)
        assert not stale.exists()  # orphan from a killed writer: gone
        assert fresh.exists()  # young enough to belong to a live writer

    def test_default_open_is_rescan_free(self, tmp_path):
        """Plain opens (workers, reducers) must not pay an O(entries)
        directory scan -- the sweep coordinator sweeps orphans exactly
        once per run instead."""
        stale = tmp_path / "deadbeef.tmp"
        stale.write_bytes(b"half a write")
        two_hours_ago = time.time() - 7200
        os.utime(stale, (two_hours_ago, two_hours_ago))
        cache = ResultCache(tmp_path)
        assert stale.exists()  # untouched: no scan happened
        # the cache still works normally without the sweep
        key = stable_key({"p": 1})
        cache.store(key, "value", wall_s=0.1)
        assert cache.load(key).value == "value"

    def test_tmp_cleanup_ignores_real_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        cache.store(key, "kept", wall_s=0.1)
        old = time.time() - 7200
        os.utime(tmp_path / f"{key}.pkl", (old, old))
        assert cache.remove_stale_tmp() == 0
        assert cache.load(key).value == "kept"

    def test_store_failure_leaves_no_tmp_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(Exception):
            cache.store(stable_key({"p": 1}), lambda: None, wall_s=0.1)
        assert list(tmp_path.glob("*.tmp")) == []


class TestHardening:
    """Framing, quarantine, and the durability ladder."""

    def test_records_are_framed_on_disk(self, tmp_path):
        from repro.runner.record import MAGIC, unframe_record

        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        cache.store(key, {"answer": 42}, wall_s=0.5)
        raw = (tmp_path / f"{key}.pkl").read_bytes()
        assert raw[:4] == MAGIC
        payload = pickle.loads(unframe_record(raw))
        assert payload == {"value": {"answer": 42}, "wall_s": 0.5}

    def test_corrupt_record_quarantined_exactly_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        cache.store(key, "value", wall_s=0.1)
        path = tmp_path / f"{key}.pkl"
        path.write_bytes(b"not a framed record")
        assert cache.load(key) is None
        assert cache.corrupt_quarantined == 1
        assert not path.exists()
        assert (tmp_path / "corrupt" / path.name).exists()
        # the move makes a second detection impossible: plain miss now
        assert cache.load(key) is None
        assert cache.corrupt_quarantined == 1

    def test_invalid_payload_shape_quarantined_and_counted(self, tmp_path):
        from repro.runner.record import frame_record

        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        (tmp_path / f"{key}.pkl").write_bytes(
            frame_record(pickle.dumps({"no": "value"}))
        )
        assert cache.load(key) is None
        assert cache.invalid_payloads == 1
        assert (tmp_path / "corrupt" / f"{key}.pkl").exists()

    @pytest.mark.parametrize("durability", ["none", "rename", "fsync"])
    def test_every_durability_rung_round_trips(self, tmp_path, durability):
        cache = ResultCache(tmp_path / durability, durability=durability)
        key = stable_key({"p": 1})
        cache.store(key, {"answer": 42}, wall_s=0.5)
        assert cache.load(key) == CacheEntry(value={"answer": 42}, wall_s=0.5)
        assert cache.storage_report()["durability"] == durability

    def test_unknown_durability_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="durability"):
            ResultCache(tmp_path, durability="paranoid")
