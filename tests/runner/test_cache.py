"""Stable hashing and the pickle-per-key result cache."""

from __future__ import annotations

import pytest

from repro.runner import CacheEntry, ResultCache, stable_key


class TestStableKey:
    def test_deterministic(self):
        obj = {"sweep": "s", "params": {"a": 1, "b": [1, 2.5, "x"]}, "seed": 7}
        assert stable_key(obj) == stable_key(obj)

    def test_dict_order_insensitive(self):
        assert stable_key({"a": 1, "b": 2}) == stable_key({"b": 2, "a": 1})

    def test_tuple_equals_list(self):
        assert stable_key({"g": (1, 2)}) == stable_key({"g": [1, 2]})

    def test_value_sensitivity(self):
        base = stable_key({"a": 1})
        assert stable_key({"a": 2}) != base
        assert stable_key({"b": 1}) != base

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(TypeError, match="not cache-keyable"):
            stable_key({"fn": object()})

    def test_rejects_non_string_dict_keys(self):
        with pytest.raises(TypeError, match="must be str"):
            stable_key({1: "x"})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        assert cache.load(key) is None
        cache.store(key, {"answer": 42}, wall_s=0.5)
        assert cache.load(key) == CacheEntry(value={"answer": 42}, wall_s=0.5)

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_key({"p": 1})
        cache.store(key, "value", wall_s=0.1)
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        assert cache.load(key) is None

    def test_keys_isolate_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(stable_key({"p": 1}), "one", wall_s=0.1)
        cache.store(stable_key({"p": 2}), "two", wall_s=0.1)
        assert cache.load(stable_key({"p": 1})).value == "one"
        assert cache.load(stable_key({"p": 2})).value == "two"
