"""Fault-tolerant sweep execution: crashes, retries, timeouts, resume.

The misbehaving point functions live in :mod:`repro.runner.faultfns`
(workers unpickle them by module reference).  Crash tests always run
with ``jobs >= 2``: a crashing point must never execute in the caller's
process.
"""

from __future__ import annotations

import pytest

from repro.runner import (
    Sweep,
    SweepCrashError,
    SweepTimeoutError,
    run_sweep,
)
from repro.runner.faultfns import crash_point, flaky_point, sleepy_point


def _crash_sweep(n: int = 4, crash_index: int = 1) -> Sweep:
    return Sweep(
        name="ft-crash",
        fn=crash_point,
        grid=tuple({"index": i, "crash": i == crash_index} for i in range(n)),
        base_seed=5,
    )


class TestCrashSurvival:
    def test_keep_going_reports_crash_and_completes_rest(self, tmp_path):
        outcome = run_sweep(_crash_sweep(), jobs=2, cache_dir=tmp_path,
                            keep_going=True)
        assert [p.params["index"] for p in outcome.points] == [0, 2, 3]
        assert outcome.failed_count == 1 and not outcome.ok
        error = outcome.errors[0]
        assert error.index == 1
        assert error.kind == "crash"
        assert error.attempts == 1
        assert "process" in error.message
        assert outcome.pool_rebuilds >= 1

    def test_rerun_recomputes_only_the_crashed_point(self, tmp_path):
        first = run_sweep(_crash_sweep(), jobs=2, cache_dir=tmp_path,
                          keep_going=True)
        assert first.computed_count == 3
        # zero lost completed points: the re-run serves every completed
        # point from cache and re-attempts only the crasher
        second = run_sweep(_crash_sweep(), jobs=2, cache_dir=tmp_path,
                           keep_going=True)
        assert second.cached_count == 3
        assert second.computed_count == 0
        assert [e.index for e in second.errors] == [1]
        for a, b in zip(first.points, second.points):
            assert a.value == b.value

    def test_crash_without_keep_going_raises(self, tmp_path):
        with pytest.raises(SweepCrashError, match="point 1"):
            run_sweep(_crash_sweep(), jobs=2, cache_dir=tmp_path)
        # completed points persisted before the abort are not lost
        rerun = run_sweep(
            Sweep(name="ft-crash", fn=crash_point, base_seed=5,
                  grid=tuple({"index": i, "crash": False} for i in range(4))),
            jobs=2, cache_dir=tmp_path,
        )
        assert rerun.ok and len(rerun.points) == 4

    def test_crash_retries_are_charged_per_attempt(self):
        outcome = run_sweep(_crash_sweep(n=3), jobs=2, retries=1,
                            retry_backoff_s=0.01, keep_going=True)
        assert outcome.errors[0].kind == "crash"
        assert outcome.errors[0].attempts == 2
        assert len(outcome.points) == 2


class TestRetries:
    def test_flaky_point_recovers_within_budget(self, tmp_path):
        grid = tuple(
            {"index": i, "fail_times": 2 if i == 1 else 0,
             "scratch": str(tmp_path)}
            for i in range(3)
        )
        sweep = Sweep(name="ft-flaky", fn=flaky_point, grid=grid, base_seed=1)
        outcome = run_sweep(sweep, jobs=2, retries=2, retry_backoff_s=0.01)
        assert outcome.ok and len(outcome.points) == 3
        flaky = next(p for p in outcome.points if p.params["index"] == 1)
        assert flaky.value["attempts"] == 3

    def test_flaky_point_recovers_serially_too(self, tmp_path):
        grid = ({"index": 0, "fail_times": 1, "scratch": str(tmp_path)},)
        sweep = Sweep(name="ft-flaky-serial", fn=flaky_point, grid=grid)
        outcome = run_sweep(sweep, jobs=1, retries=1, retry_backoff_s=0.01)
        assert outcome.ok and outcome.points[0].value["attempts"] == 2

    def test_exhausted_retries_surface_original_exception(self, tmp_path):
        grid = ({"index": 0, "fail_times": 99, "scratch": str(tmp_path)},)
        sweep = Sweep(name="ft-flaky-fatal", fn=flaky_point, grid=grid)
        with pytest.raises(RuntimeError, match="flaky point 0"):
            run_sweep(sweep, jobs=2, retries=1, retry_backoff_s=0.01)

    def test_exhausted_retries_as_error_record_under_keep_going(self, tmp_path):
        grid = tuple(
            {"index": i, "fail_times": 99 if i == 0 else 0,
             "scratch": str(tmp_path)}
            for i in range(2)
        )
        for jobs in (1, 2):
            outcome = run_sweep(
                Sweep(name=f"ft-flaky-kg-{jobs}", fn=flaky_point, grid=grid),
                jobs=jobs, retries=1, retry_backoff_s=0.01, keep_going=True,
            )
            error = outcome.errors[0]
            assert (error.index, error.kind, error.attempts) == (0, "error", 2)
            assert "flaky point 0" in error.message
            assert [p.params["index"] for p in outcome.points] == [1]


class TestTimeouts:
    def _sleepy_sweep(self) -> Sweep:
        return Sweep(
            name="ft-sleepy",
            fn=sleepy_point,
            grid=tuple(
                {"index": i, "sleep_s": 30.0 if i == 1 else 0.0}
                for i in range(3)
            ),
            base_seed=2,
        )

    def test_timeout_reported_under_keep_going(self, tmp_path):
        outcome = run_sweep(self._sleepy_sweep(), jobs=2, cache_dir=tmp_path,
                            timeout_s=1.0, keep_going=True)
        assert [p.params["index"] for p in outcome.points] == [0, 2]
        error = outcome.errors[0]
        assert error.index == 1 and error.kind == "timeout"
        assert "timeout" in error.message
        assert outcome.pool_rebuilds >= 1

    def test_timeout_without_keep_going_raises(self):
        with pytest.raises(SweepTimeoutError, match="point 1"):
            run_sweep(self._sleepy_sweep(), jobs=2, timeout_s=1.0)

    def test_fast_points_unaffected_by_generous_timeout(self):
        grid = tuple({"index": i, "sleep_s": 0.0} for i in range(3))
        sweep = Sweep(name="ft-fast", fn=sleepy_point, grid=grid)
        outcome = run_sweep(sweep, jobs=2, timeout_s=60.0)
        assert outcome.ok and outcome.pool_rebuilds == 0

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout_s"):
            run_sweep(self._sleepy_sweep(), jobs=2, timeout_s=0.0)

    def test_bad_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            run_sweep(self._sleepy_sweep(), jobs=2, retries=-1)
