"""Coordinator backoff under load: retries must not stall the sweep.

A retrying point sits in exponential backoff between attempts.  The
coordinator's scheduling loop must treat that waiting as *idle
capacity*: other ready points keep getting submitted and their
completions keep streaming while the flaky point waits out its delays.
The regression these tests guard against is a coordinator that blocks
on the backoff timer (sleeping the loop instead of requeueing), which
would serialize the whole sweep behind its slowest retrier.

Retry delays are *full-jitter*: each attempt waits a deterministic
``U(0, base * 2**(attempt-1))`` draw derived from the point's seed, so
the timing bounds below reason about the jitter window rather than the
nominal exponential.  Timings use generous bounds sized for a loaded
single-core CI box; the suite-wide wall-clock clamp turns a genuine
stall into a fast failure rather than a hang.
"""

from __future__ import annotations

import time

from repro.runner import Sweep, full_jitter_backoff, run_sweep
from repro.runner.faultfns import flaky_point, sleepy_point
from repro.runner.sweep import derive_seeds


def test_backoff_does_not_stall_other_completions(tmp_path):
    """Healthy points all complete while the flaky point is still
    backing off, and their completions stream through ``on_point``
    well before the flaky point's final success."""
    n_sleepy = 4
    backoff_s = 0.8  # nominal base; actual delays are jittered per seed
    grid = (
        # index 0: fails twice, succeeds on the third attempt
        {"index": 0, "fail_times": 2, "scratch": str(tmp_path)},
    ) + tuple(
        {"index": i, "fail_times": 0, "scratch": str(tmp_path)}
        for i in range(1, 1 + n_sleepy)
    )
    completed: list[tuple[int, float]] = []
    start = time.monotonic()

    def on_point(point):
        completed.append((point.index, time.monotonic() - start))

    result = run_sweep(
        Sweep(name="backoff-stream", fn=flaky_point, grid=grid, base_seed=3),
        jobs=2,
        retries=3,
        retry_backoff_s=backoff_s,
        keep_going=True,
        on_point=on_point,
    )

    assert result.ok
    by_index = dict(completed)
    assert set(by_index) == {0, 1, 2, 3, 4}
    flaky_done = by_index[0]
    healthy_done = max(t for i, t in completed if i != 0)
    # the flaky point waited out two jittered backoffs (deterministic
    # given its seed); the healthy points are instant.  If the
    # coordinator kept scheduling during the backoff, every healthy
    # completion lands well before the flaky one.
    flaky_seed = derive_seeds(3, len(grid))[0]
    total_delay = sum(
        full_jitter_backoff(backoff_s, attempt, flaky_seed)
        for attempt in (1, 2)
    )
    assert total_delay > 0.5  # seed chosen so the window is observable
    assert flaky_done >= total_delay  # sanity: backoff really happened
    assert healthy_done < flaky_done, (
        f"healthy points finished at {healthy_done:.2f}s, after the "
        f"flaky point's {flaky_done:.2f}s -- the backoff stalled them"
    )
    # completion order: all healthy indices streamed before the retrier
    assert [i for i, _ in completed][-1] == 0


def test_backoff_wall_time_not_serialized(tmp_path):
    """Two independent retriers back off concurrently, not in sequence.

    Each point fails once then succeeds, with a 0.5s first-retry delay.
    A coordinator that sleeps through backoffs one point at a time would
    need >= 1.0s of pure delay; concurrent backoff needs ~0.5s.  The
    bound of 3.0s total is generous for CI noise while still catching
    full serialization of larger grids (4 x 0.5s = 2.0s of delay plus
    attempt overhead would exceed it).
    """
    n_flaky = 4
    backoff_s = 0.5
    grid = tuple(
        {"index": i, "fail_times": 1, "scratch": str(tmp_path)}
        for i in range(n_flaky)
    )
    start = time.monotonic()
    result = run_sweep(
        Sweep(name="backoff-concurrent", fn=flaky_point, grid=grid, base_seed=5),
        jobs=n_flaky,
        retries=2,
        retry_backoff_s=backoff_s,
    )
    elapsed = time.monotonic() - start
    assert result.ok
    assert all(p.attempts == 2 for p in result.points)
    assert elapsed < 3.0, (
        f"4 concurrent 0.5s backoffs took {elapsed:.2f}s -- "
        "the coordinator is serializing retry delays"
    )


def test_sleepy_points_keep_streaming_past_a_retrier(tmp_path):
    """Completion streaming continues during a backoff window: slow but
    healthy points submitted *after* the flaky point's failure still
    start, run, and stream while the retrier waits."""
    sleep_s = 0.15
    grid = (
        {"index": 0, "fail_times": 2, "scratch": str(tmp_path)},
    ) + tuple(
        {"index": i, "sleep_s": sleep_s} for i in range(1, 7)
    )

    completed: list[int] = []
    result = run_sweep(
        Sweep(
            name="backoff-sleepy",
            fn=_flaky_or_sleepy,
            grid=grid,
            base_seed=11,
        ),
        jobs=2,
        retries=3,
        retry_backoff_s=1.2,
        on_point=lambda p: completed.append(p.index),
    )
    assert result.ok
    # every sleepy point (6 x 0.15s across 2 workers ~ 0.45s of work)
    # resolved before the flaky point cleared its two jittered backoffs
    # (~0.97s total for base_seed=11 -- deterministic, see
    # full_jitter_backoff)
    assert completed[-1] == 0
    assert set(completed[:-1]) == set(range(1, 7))


class TestFullJitter:
    """The deterministic full-jitter schedule itself (no pools)."""

    def test_schedules_differ_across_points(self):
        """Points of one sweep fan their retries out over the window
        instead of stampeding in synchronized waves: the first-retry
        delays across a grid are (essentially) all distinct."""
        seeds = derive_seeds(base_seed=42, n=32)
        delays = [full_jitter_backoff(1.0, 1, s) for s in seeds]
        assert len(set(delays)) == len(delays)
        # and they genuinely spread over the window, not cluster
        assert min(delays) < 0.25 and max(delays) > 0.75

    def test_schedule_reproduces_across_runs(self):
        """Same (seed, attempt) -> same delay, run after run: retry
        timing is part of the experiment's deterministic surface."""
        seeds = derive_seeds(base_seed=7, n=8)
        first = [
            [full_jitter_backoff(0.5, a, s) for a in (1, 2, 3)] for s in seeds
        ]
        second = [
            [full_jitter_backoff(0.5, a, s) for a in (1, 2, 3)] for s in seeds
        ]
        assert first == second

    def test_jitter_respects_exponential_ceiling_and_cap(self):
        seed = derive_seeds(base_seed=9, n=1)[0]
        for attempt in range(1, 12):
            delay = full_jitter_backoff(0.5, attempt, seed, cap_s=30.0)
            assert 0.0 <= delay <= min(0.5 * 2 ** (attempt - 1), 30.0)

    def test_attempt_is_one_based(self):
        import pytest

        with pytest.raises(ValueError):
            full_jitter_backoff(1.0, 0, 123)


def _flaky_or_sleepy(params: dict, seed: int) -> dict:
    """Module-level composite so worker processes can unpickle it."""
    if "sleep_s" in params:
        return sleepy_point(params, seed)
    return flaky_point(params, seed)
