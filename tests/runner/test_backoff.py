"""Coordinator backoff under load: retries must not stall the sweep.

A retrying point sits in exponential backoff between attempts.  The
coordinator's scheduling loop must treat that waiting as *idle
capacity*: other ready points keep getting submitted and their
completions keep streaming while the flaky point waits out its delays.
The regression these tests guard against is a coordinator that blocks
on the backoff timer (sleeping the loop instead of requeueing), which
would serialize the whole sweep behind its slowest retrier.

Timings use generous bounds sized for a loaded single-core CI box; the
directory's autouse wall-clock clamp turns a genuine stall into a fast
failure rather than a hang.
"""

from __future__ import annotations

import time

from repro.runner import Sweep, run_sweep
from repro.runner.faultfns import flaky_point, sleepy_point


def test_backoff_does_not_stall_other_completions(tmp_path):
    """Healthy points all complete while the flaky point is still
    backing off, and their completions stream through ``on_point``
    well before the flaky point's final success."""
    n_sleepy = 4
    backoff_s = 0.8  # first retry delay; total flaky delay >= 0.8 + 1.6
    grid = (
        # index 0: fails twice, succeeds on the third attempt
        {"index": 0, "fail_times": 2, "scratch": str(tmp_path)},
    ) + tuple(
        {"index": i, "fail_times": 0, "scratch": str(tmp_path)}
        for i in range(1, 1 + n_sleepy)
    )
    completed: list[tuple[int, float]] = []
    start = time.monotonic()

    def on_point(point):
        completed.append((point.index, time.monotonic() - start))

    result = run_sweep(
        Sweep(name="backoff-stream", fn=flaky_point, grid=grid, base_seed=3),
        jobs=2,
        retries=3,
        retry_backoff_s=backoff_s,
        keep_going=True,
        on_point=on_point,
    )

    assert result.ok
    by_index = dict(completed)
    assert set(by_index) == {0, 1, 2, 3, 4}
    flaky_done = by_index[0]
    healthy_done = max(t for i, t in completed if i != 0)
    # the flaky point waited out >= 0.8s + 1.6s of backoff; the healthy
    # points are instant.  If the coordinator kept scheduling during the
    # backoff, every healthy completion lands well before the flaky one.
    assert flaky_done >= backoff_s  # sanity: backoff really happened
    assert healthy_done < flaky_done, (
        f"healthy points finished at {healthy_done:.2f}s, after the "
        f"flaky point's {flaky_done:.2f}s -- the backoff stalled them"
    )
    # completion order: all healthy indices streamed before the retrier
    assert [i for i, _ in completed][-1] == 0


def test_backoff_wall_time_not_serialized(tmp_path):
    """Two independent retriers back off concurrently, not in sequence.

    Each point fails once then succeeds, with a 0.5s first-retry delay.
    A coordinator that sleeps through backoffs one point at a time would
    need >= 1.0s of pure delay; concurrent backoff needs ~0.5s.  The
    bound of 3.0s total is generous for CI noise while still catching
    full serialization of larger grids (4 x 0.5s = 2.0s of delay plus
    attempt overhead would exceed it).
    """
    n_flaky = 4
    backoff_s = 0.5
    grid = tuple(
        {"index": i, "fail_times": 1, "scratch": str(tmp_path)}
        for i in range(n_flaky)
    )
    start = time.monotonic()
    result = run_sweep(
        Sweep(name="backoff-concurrent", fn=flaky_point, grid=grid, base_seed=5),
        jobs=n_flaky,
        retries=2,
        retry_backoff_s=backoff_s,
    )
    elapsed = time.monotonic() - start
    assert result.ok
    assert all(p.attempts == 2 for p in result.points)
    assert elapsed < 3.0, (
        f"4 concurrent 0.5s backoffs took {elapsed:.2f}s -- "
        "the coordinator is serializing retry delays"
    )


def test_sleepy_points_keep_streaming_past_a_retrier(tmp_path):
    """Completion streaming continues during a backoff window: slow but
    healthy points submitted *after* the flaky point's failure still
    start, run, and stream while the retrier waits."""
    sleep_s = 0.15
    grid = (
        {"index": 0, "fail_times": 2, "scratch": str(tmp_path)},
    ) + tuple(
        {"index": i, "sleep_s": sleep_s} for i in range(1, 7)
    )

    completed: list[int] = []
    result = run_sweep(
        Sweep(
            name="backoff-sleepy",
            fn=_flaky_or_sleepy,
            grid=grid,
            base_seed=11,
        ),
        jobs=2,
        retries=3,
        retry_backoff_s=0.6,
        on_point=lambda p: completed.append(p.index),
    )
    assert result.ok
    # every sleepy point (6 x 0.15s across 2 workers ~ 0.45s of work)
    # resolved before the flaky point cleared its >= 0.6 + 1.2s backoff
    assert completed[-1] == 0
    assert set(completed[:-1]) == set(range(1, 7))


def _flaky_or_sleepy(params: dict, seed: int) -> dict:
    """Module-level composite so worker processes can unpickle it."""
    if "sleep_s" in params:
        return sleepy_point(params, seed)
    return flaky_point(params, seed)
