"""Batched sweep points reproduce their per-device scalar counterparts.

The E16/E14 benches and the CLI ``population`` command moved from
one-sweep-point-per-device to one-point-per-batched-chunk; these tests
pin that the move is purely an execution-strategy change: wear values,
percentiles, and the A6 sensitivity grid are unchanged, and chunk size
never leaks into results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runner.points import (
    DEFAULT_MIX_WEIGHTS,
    assign_mixes,
    population_batch_grid,
    population_batch_point,
    population_point,
    sensitivity_batch_point,
    sensitivity_point,
)

N_USERS = 12
DAYS = 150


def _sequential_mixes(seed: int, mix_weights: dict, n: int) -> list[str]:
    """The original convention: one rng.choice draw per device, in order."""
    rng = np.random.default_rng(seed)
    names = list(mix_weights)
    weights = np.array(list(mix_weights.values()))
    weights = weights / weights.sum()
    return [names[rng.choice(len(names), p=weights)] for _ in range(n)]


class TestAssignMixes:
    def test_matches_sequential_choice_loop_bit_identically(self):
        for seed in (0, 606, 1414, 2**40 + 17):
            expected = _sequential_mixes(seed, DEFAULT_MIX_WEIGHTS, 300)
            assert assign_mixes(seed, DEFAULT_MIX_WEIGHTS, 0, 300) == expected

    def test_slice_property(self):
        """A shard's assignment is the global assignment's slice -- the
        invariant that makes sharding chunk-size invariant."""
        full = assign_mixes(606, DEFAULT_MIX_WEIGHTS, 0, 1000)
        for start, count in ((0, 1), (437, 200), (999, 1), (250, 750)):
            assert assign_mixes(606, DEFAULT_MIX_WEIGHTS, start, count) == \
                full[start:start + count]

    def test_accepts_ordered_pairs(self):
        pairs = list(DEFAULT_MIX_WEIGHTS.items())
        assert assign_mixes(7, pairs, 0, 50) == \
            assign_mixes(7, DEFAULT_MIX_WEIGHTS, 0, 50)

    def test_weight_order_matters(self):
        """Reordered weights assign differently -- why sharded grids carry
        weights as an ordered list of pairs, never a key-sorted mapping."""
        pairs = list(DEFAULT_MIX_WEIGHTS.items())
        reordered = list(reversed(pairs))
        assert assign_mixes(606, pairs, 0, 200) != \
            assign_mixes(606, reordered, 0, 200)

    def test_empty_count(self):
        assert assign_mixes(1, DEFAULT_MIX_WEIGHTS, 5, 0) == []

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            assign_mixes(1, {}, 0, 5)
        with pytest.raises(ValueError):
            assign_mixes(1, {"a": -1.0, "b": 2.0}, 0, 5)
        with pytest.raises(ValueError):
            assign_mixes(1, {"a": 0.0}, 0, 5)
        with pytest.raises(ValueError):
            assign_mixes(1, DEFAULT_MIX_WEIGHTS, -1, 5)


def _flatten(grid):
    return [
        (mix, seed)
        for chunk in grid
        for mix, seed in zip(chunk["mixes"], chunk["workload_seeds"])
    ]


def test_population_batch_matches_scalar_percentiles():
    grid = population_batch_grid(
        N_USERS, DAYS, 64.0, seed=606, mix_weights=DEFAULT_MIX_WEIGHTS, chunk=5
    )
    batched = np.concatenate(
        [np.asarray(population_batch_point(chunk, 0)) for chunk in grid]
    )
    scalar = np.array([
        population_point(
            {"mix": mix, "capacity_gb": 64.0, "days": DAYS, "workload_seed": seed}, 0
        )
        for mix, seed in _flatten(grid)
    ])
    # TLC populations are bit-identical, so the percentile regression is
    # an exact-equality claim, not a tolerance claim
    assert np.array_equal(batched, scalar)
    for q in (0.5, 0.9, 0.99):
        assert np.quantile(batched, q) == np.quantile(scalar, q)


def test_population_batch_grid_chunk_invariant():
    wear = {}
    for chunk in (1, 4, 7, N_USERS):  # 7: a ragged final chunk
        grid = population_batch_grid(
            N_USERS, DAYS, 64.0, seed=606,
            mix_weights=DEFAULT_MIX_WEIGHTS, chunk=chunk,
        )
        assert sum(len(g["mixes"]) for g in grid) == N_USERS
        wear[chunk] = np.concatenate(
            [np.asarray(population_batch_point(g, 0)) for g in grid]
        )
    assert np.array_equal(wear[1], wear[4])
    assert np.array_equal(wear[4], wear[7])
    assert np.array_equal(wear[7], wear[N_USERS])


def test_population_batch_grid_validates_chunk():
    with pytest.raises(ValueError):
        population_batch_grid(
            4, 30, 64.0, seed=1, mix_weights=DEFAULT_MIX_WEIGHTS, chunk=0
        )


def test_population_batch_point_supports_faults():
    grid = population_batch_grid(
        4, 90, 64.0, seed=17, mix_weights=DEFAULT_MIX_WEIGHTS, chunk=4
    )
    faults = {"block_infant_mortality": 0.05, "transient_read_rate": 0.2,
              "power_loss_rate": 0.05, "cloud_outage_rate": 0.02}
    plain = population_batch_point(grid[0], 0)
    faulted = population_batch_point({**grid[0], "faults": faults}, 0)
    assert len(faulted) == len(plain) == 4
    assert faulted != plain  # the plan visibly perturbed the fleet


def test_sensitivity_batch_row_matches_scalar_grid():
    base = {"capacity_gb": 64.0, "mix": "typical", "days": DAYS,
            "workload_seed": 111}
    wafs = [1.5, 3.5]
    for plc_pec in (300, 700):
        row = sensitivity_batch_point({**base, "plc_pec": plc_pec, "wafs": wafs}, 0)
        assert [p["waf"] for p in row] == wafs
        for point in row:
            scalar = sensitivity_point(
                {**base, "plc_pec": plc_pec, "waf": point["waf"]}, 0
            )
            assert point.keys() == scalar.keys()
            for key, value in scalar.items():
                assert point[key] == pytest.approx(value, rel=1e-9), (plc_pec, key)
