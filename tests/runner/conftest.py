"""Runner-test guardrails.

The fault-tolerance tests spawn worker pools, kill them, and wait on
backoff timers; a regression in the coordinator's scheduling loop would
show up as a hang, not a failure.  Every test in this directory runs
under a wall-clock clamp so a hang fails loudly (and fast enough for
CI) instead of stalling the suite.
"""

from __future__ import annotations

import signal

import pytest

#: generous bound: the slowest legitimate test here finishes in well
#: under a minute even on a loaded single-core box
WALL_CLOCK_LIMIT_S = 120


@pytest.fixture(autouse=True)
def wall_clock_clamp(request):
    """Fail any runner test that runs longer than the clamp."""

    def _abort(signum, frame):
        raise TimeoutError(
            f"{request.node.nodeid} exceeded the {WALL_CLOCK_LIMIT_S}s "
            "wall-clock clamp (runner scheduling loop hung?)"
        )

    previous = signal.signal(signal.SIGALRM, _abort)
    signal.alarm(WALL_CLOCK_LIMIT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
