"""Runner-test guardrails.

The fault-tolerance tests spawn worker pools, kill them, and wait on
backoff timers; a regression in the coordinator's scheduling loop would
show up as a hang, not a failure.  Opt the whole directory into the
shared wall-clock clamp from ``tests/conftest.py`` so a hang fails
loudly (and fast enough for CI) instead of stalling the suite.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _clamped(wall_clock_clamp):
    """Apply the shared SIGALRM wall-clock clamp to every test here."""
    yield
