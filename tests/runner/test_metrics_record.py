"""Regression: bench records must not drop runtime accounting.

The streaming coordinator used to report only per-point wall times;
cache hit/miss counts, retry attempts, structured errors, and pool
rebuilds were silently dropped from ``BENCH_runner.json``.  These tests
pin the v2 record schema to the full accounting.
"""

from __future__ import annotations

import json

import pytest

from repro.runner.faultfns import flaky_point
from repro.runner.metrics import BENCH_SCHEMA, bench_record, write_bench_json
from repro.runner.sweep import Sweep, run_sweep


def _flaky_sweep(scratch, name: str) -> Sweep:
    grid = (
        {"index": 0, "fail_times": 0, "scratch": str(scratch)},
        {"index": 1, "fail_times": 2, "scratch": str(scratch)},
    )
    return Sweep(name=name, fn=flaky_point, grid=grid, base_seed=3)


class TestBenchRecord:
    def test_records_retry_attempts(self, tmp_path):
        outcome = run_sweep(_flaky_sweep(tmp_path, "bench-retry"), retries=2)
        record = bench_record(outcome)
        assert record["retry_attempts"] == 2
        by_index = {p["index"]: p for p in record["points"]}
        assert by_index[0]["attempts"] == 1
        assert by_index[1]["attempts"] == 3

    def test_records_cache_hits_and_misses_on_resume(self, tmp_path):
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        cache_dir = tmp_path / "cache"
        sweep = _flaky_sweep(scratch, "bench-cache")
        first = bench_record(run_sweep(sweep, cache_dir=cache_dir, retries=2))
        assert (first["cached_points"], first["computed_points"]) == (0, 2)
        resumed = bench_record(run_sweep(sweep, cache_dir=cache_dir, retries=2))
        assert (resumed["cached_points"], resumed["computed_points"]) == (2, 0)
        # cached points do not re-report the original run's retries
        assert resumed["retry_attempts"] == 0

    def test_records_structured_errors_under_keep_going(self, tmp_path):
        grid = ({"index": 0, "fail_times": 99, "scratch": str(tmp_path)},)
        sweep = Sweep(name="bench-errors", fn=flaky_point, grid=grid)
        outcome = run_sweep(sweep, retries=1, keep_going=True)
        record = bench_record(outcome)
        assert record["grid_points"] == 1
        assert record["failed_points"] == 1
        (error,) = record["errors"]
        assert error["kind"] == "error"
        assert error["attempts"] == 2
        assert "flaky point 0" in error["message"]

    def test_records_merged_metrics_when_collected(self, tmp_path):
        outcome = run_sweep(
            _flaky_sweep(tmp_path, "bench-obs"), retries=2, collect_obs=True
        )
        record = bench_record(outcome)
        assert "metrics" in record
        # deterministic view only: no wall times inside the rollup
        for span in record["metrics"]["spans"].values():
            assert set(span) == {"calls"}

    def test_record_without_obs_has_no_metrics_key(self, tmp_path):
        outcome = run_sweep(_flaky_sweep(tmp_path, "bench-plain"), retries=2)
        assert "metrics" not in bench_record(outcome)


class TestWriteBenchJson:
    def test_payload_round_trips_with_v2_schema(self, tmp_path):
        outcome = run_sweep(_flaky_sweep(tmp_path, "bench-io"), retries=2)
        path = tmp_path / "BENCH_runner.json"
        payload = write_bench_json(path, [outcome], notes="test")
        assert payload["schema"] == BENCH_SCHEMA == "repro.runner.bench/v2"
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        (sweep_rec,) = on_disk["sweeps"]
        for key in ("retry_attempts", "pool_rebuilds", "failed_points", "errors"):
            assert key in sweep_rec

    def test_extras_merge_without_shadowing(self, tmp_path):
        outcome = run_sweep(_flaky_sweep(tmp_path, "bench-extras"), retries=2)
        path = tmp_path / "BENCH_runner.json"
        payload = write_bench_json(
            path, [outcome], extras={"store": {"ratio": 5.0}}
        )
        assert payload["store"] == {"ratio": 5.0}
        assert json.loads(path.read_text())["store"] == {"ratio": 5.0}
        with pytest.raises(ValueError):
            write_bench_json(path, [outcome], extras={"sweeps": []})
