"""Sweep runner: seed derivation, determinism, caching, ordering."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.runner import Sweep, derive_seeds, run_sweep
from repro.runner.points import lifetime_point, population_point

#: small but non-trivial lifetime grid (120 days keeps it fast)
LIFETIME_GRID = tuple(
    {"build": name, "capacity_gb": 64.0, "mix": "typical", "days": 120}
    for name in ("tlc_baseline", "sos", "qlc_baseline", "plc_naive")
)


def _lifetime_sweep() -> Sweep:
    return Sweep(name="test-lifetime", fn=lifetime_point, grid=LIFETIME_GRID,
                 base_seed=7)


class TestDeriveSeeds:
    def test_deterministic(self):
        assert derive_seeds(7, 5) == derive_seeds(7, 5)

    def test_prefix_stable(self):
        # a point's seed depends only on (base_seed, index) -- growing the
        # grid must not move existing points
        assert derive_seeds(7, 8)[:3] == derive_seeds(7, 3)

    def test_base_seed_matters(self):
        assert derive_seeds(7, 4) != derive_seeds(8, 4)

    def test_distinct_within_sweep(self):
        seeds = derive_seeds(0, 64)
        assert len(set(seeds)) == len(seeds)


class TestDeterminism:
    def test_parallel_matches_serial_bit_identical(self):
        serial = run_sweep(_lifetime_sweep(), jobs=1)
        parallel = run_sweep(_lifetime_sweep(), jobs=4)
        assert serial.jobs == 1 and parallel.jobs == 4
        for a, b in zip(serial.points, parallel.points):
            assert a.params == b.params
            assert a.seed == b.seed
            assert a.value.samples == b.value.samples  # bit-identical, not approx
            assert a.value.final == b.value.final

    def test_results_in_grid_order(self):
        outcome = run_sweep(_lifetime_sweep(), jobs=4)
        assert [p.params["build"] for p in outcome.points] == [
            g["build"] for g in LIFETIME_GRID
        ]
        assert [p.index for p in outcome.points] == list(range(len(LIFETIME_GRID)))

    def test_derived_seeds_feed_workloads(self):
        # no workload_seed in params: each point must get its own derived
        # stream, so different builds on the same grid still see the same
        # workload (same index ordering) across runs
        wear = run_sweep(
            Sweep(name="pop", fn=population_point, base_seed=3, grid=tuple(
                {"mix": "typical", "capacity_gb": 64.0, "days": 90,
                 "workload_seed": 1000 + u} for u in range(3)
            )),
            jobs=2,
        ).values()
        assert wear == run_sweep(
            Sweep(name="pop", fn=population_point, base_seed=3, grid=tuple(
                {"mix": "typical", "capacity_gb": 64.0, "days": 90,
                 "workload_seed": 1000 + u} for u in range(3)
            )),
            jobs=1,
        ).values()


class TestCaching:
    def test_second_run_is_fully_cached(self, tmp_path):
        first = run_sweep(_lifetime_sweep(), jobs=1, cache_dir=tmp_path)
        second = run_sweep(_lifetime_sweep(), jobs=1, cache_dir=tmp_path)
        assert first.cached_count == 0
        assert second.cached_count == len(LIFETIME_GRID)
        assert second.computed_count == 0
        for a, b in zip(first.points, second.points):
            assert a.value.samples == b.value.samples

    def test_version_tag_invalidates(self, tmp_path):
        sweep = _lifetime_sweep()
        run_sweep(sweep, jobs=1, cache_dir=tmp_path)
        bumped = dataclasses.replace(sweep, version_tag="v2")
        rerun = run_sweep(bumped, jobs=1, cache_dir=tmp_path)
        assert rerun.cached_count == 0

    def test_param_change_misses(self, tmp_path):
        run_sweep(_lifetime_sweep(), jobs=1, cache_dir=tmp_path)
        grown = Sweep(
            name="test-lifetime", fn=lifetime_point, base_seed=7,
            grid=LIFETIME_GRID + (
                {"build": "tlc_baseline", "capacity_gb": 128.0,
                 "mix": "typical", "days": 120},
            ),
        )
        rerun = run_sweep(grown, jobs=1, cache_dir=tmp_path)
        # prefix-stable seeds: the original points all hit, only the new
        # point computes
        assert rerun.cached_count == len(LIFETIME_GRID)
        assert rerun.computed_count == 1

    def test_resume_after_partial_sweep_is_bit_identical(self, tmp_path):
        full = run_sweep(_lifetime_sweep(), jobs=1, cache_dir=tmp_path)
        # simulate a sweep interrupted after 3 of 4 points: drop one
        # cached entry, as if the crash happened before it was stored
        victim = 2
        key = _lifetime_sweep().point_key(
            victim, derive_seeds(7, len(LIFETIME_GRID))[victim]
        )
        (tmp_path / f"{key}.pkl").unlink()
        resumed = run_sweep(_lifetime_sweep(), jobs=2, cache_dir=tmp_path)
        assert resumed.cached_count == len(LIFETIME_GRID) - 1
        assert resumed.computed_count == 1
        for a, b in zip(full.points, resumed.points):
            assert a.value.samples == b.value.samples  # bit-identical resume

    def test_unkeyable_grid_rejected_even_without_cache(self):
        sweep = Sweep(
            name="bad", fn=lifetime_point, base_seed=0,
            grid=({"build": "tlc_baseline", "obj": object(),
                   "capacity_gb": 64.0, "mix": "typical", "days": 30},),
        )
        with pytest.raises(TypeError, match="not cache-keyable"):
            run_sweep(sweep, jobs=1)


class TestValidation:
    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="at least one point"):
            Sweep(name="empty", fn=lifetime_point, grid=())

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(_lifetime_sweep(), jobs=0)
