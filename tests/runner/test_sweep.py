"""Sweep runner: seed derivation, determinism, caching, ordering."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.runner import Sweep, derive_seeds, run_sweep
from repro.runner.points import lifetime_point, population_point

#: small but non-trivial lifetime grid (120 days keeps it fast)
LIFETIME_GRID = tuple(
    {"build": name, "capacity_gb": 64.0, "mix": "typical", "days": 120}
    for name in ("tlc_baseline", "sos", "qlc_baseline", "plc_naive")
)


def _lifetime_sweep() -> Sweep:
    return Sweep(name="test-lifetime", fn=lifetime_point, grid=LIFETIME_GRID,
                 base_seed=7)


class TestDeriveSeeds:
    def test_deterministic(self):
        assert derive_seeds(7, 5) == derive_seeds(7, 5)

    def test_prefix_stable(self):
        # a point's seed depends only on (base_seed, index) -- growing the
        # grid must not move existing points
        assert derive_seeds(7, 8)[:3] == derive_seeds(7, 3)

    def test_base_seed_matters(self):
        assert derive_seeds(7, 4) != derive_seeds(8, 4)

    def test_distinct_within_sweep(self):
        seeds = derive_seeds(0, 64)
        assert len(set(seeds)) == len(seeds)


class TestDeterminism:
    def test_parallel_matches_serial_bit_identical(self):
        serial = run_sweep(_lifetime_sweep(), jobs=1)
        parallel = run_sweep(_lifetime_sweep(), jobs=4)
        assert serial.jobs == 1 and parallel.jobs == 4
        for a, b in zip(serial.points, parallel.points):
            assert a.params == b.params
            assert a.seed == b.seed
            assert a.value.samples == b.value.samples  # bit-identical, not approx
            assert a.value.final == b.value.final

    def test_results_in_grid_order(self):
        outcome = run_sweep(_lifetime_sweep(), jobs=4)
        assert [p.params["build"] for p in outcome.points] == [
            g["build"] for g in LIFETIME_GRID
        ]
        assert [p.index for p in outcome.points] == list(range(len(LIFETIME_GRID)))

    def test_derived_seeds_feed_workloads(self):
        # no workload_seed in params: each point must get its own derived
        # stream, so different builds on the same grid still see the same
        # workload (same index ordering) across runs
        wear = run_sweep(
            Sweep(name="pop", fn=population_point, base_seed=3, grid=tuple(
                {"mix": "typical", "capacity_gb": 64.0, "days": 90,
                 "workload_seed": 1000 + u} for u in range(3)
            )),
            jobs=2,
        ).values()
        assert wear == run_sweep(
            Sweep(name="pop", fn=population_point, base_seed=3, grid=tuple(
                {"mix": "typical", "capacity_gb": 64.0, "days": 90,
                 "workload_seed": 1000 + u} for u in range(3)
            )),
            jobs=1,
        ).values()


class TestCaching:
    def test_second_run_is_fully_cached(self, tmp_path):
        first = run_sweep(_lifetime_sweep(), jobs=1, cache_dir=tmp_path)
        second = run_sweep(_lifetime_sweep(), jobs=1, cache_dir=tmp_path)
        assert first.cached_count == 0
        assert second.cached_count == len(LIFETIME_GRID)
        assert second.computed_count == 0
        for a, b in zip(first.points, second.points):
            assert a.value.samples == b.value.samples

    def test_version_tag_invalidates(self, tmp_path):
        sweep = _lifetime_sweep()
        run_sweep(sweep, jobs=1, cache_dir=tmp_path)
        bumped = dataclasses.replace(sweep, version_tag="v2")
        rerun = run_sweep(bumped, jobs=1, cache_dir=tmp_path)
        assert rerun.cached_count == 0

    def test_param_change_misses(self, tmp_path):
        run_sweep(_lifetime_sweep(), jobs=1, cache_dir=tmp_path)
        grown = Sweep(
            name="test-lifetime", fn=lifetime_point, base_seed=7,
            grid=LIFETIME_GRID + (
                {"build": "tlc_baseline", "capacity_gb": 128.0,
                 "mix": "typical", "days": 120},
            ),
        )
        rerun = run_sweep(grown, jobs=1, cache_dir=tmp_path)
        # prefix-stable seeds: the original points all hit, only the new
        # point computes
        assert rerun.cached_count == len(LIFETIME_GRID)
        assert rerun.computed_count == 1

    def test_resume_after_partial_sweep_is_bit_identical(self, tmp_path):
        full = run_sweep(_lifetime_sweep(), jobs=1, cache_dir=tmp_path)
        # simulate a sweep interrupted after 3 of 4 points: drop one
        # cached entry, as if the crash happened before it was stored
        victim = 2
        key = _lifetime_sweep().point_key(
            victim, derive_seeds(7, len(LIFETIME_GRID))[victim]
        )
        (tmp_path / f"{key}.pkl").unlink()
        resumed = run_sweep(_lifetime_sweep(), jobs=2, cache_dir=tmp_path)
        assert resumed.cached_count == len(LIFETIME_GRID) - 1
        assert resumed.computed_count == 1
        for a, b in zip(full.points, resumed.points):
            assert a.value.samples == b.value.samples  # bit-identical resume

    def test_unkeyable_grid_rejected_even_without_cache(self):
        sweep = Sweep(
            name="bad", fn=lifetime_point, base_seed=0,
            grid=({"build": "tlc_baseline", "obj": object(),
                   "capacity_gb": 64.0, "mix": "typical", "days": 30},),
        )
        with pytest.raises(TypeError, match="not cache-keyable"):
            run_sweep(sweep, jobs=1)


class TestValidation:
    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="at least one point"):
            Sweep(name="empty", fn=lifetime_point, grid=())

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(_lifetime_sweep(), jobs=0)


class TestStreamingReduction:
    """on_point / keep_values: the hooks the fleet reducer stands on."""

    def _grid(self, tmp_path, n=5):
        return tuple({"index": i, "sleep_s": 0.0} for i in range(n))

    def test_hook_sees_every_point(self, tmp_path):
        from repro.runner.faultfns import sleepy_point

        seen = []
        outcome = run_sweep(
            Sweep(name="hooked", fn=sleepy_point,
                  grid=self._grid(tmp_path), base_seed=1),
            on_point=lambda p: seen.append((p.index, p.value["index"])),
        )
        assert outcome.ok
        assert sorted(seen) == [(i, i) for i in range(5)]

    def test_hook_sees_every_point_parallel(self, tmp_path):
        from repro.runner.faultfns import sleepy_point

        seen = []
        outcome = run_sweep(
            Sweep(name="hooked-par", fn=sleepy_point,
                  grid=self._grid(tmp_path), base_seed=1),
            jobs=2,
            on_point=lambda p: seen.append(p.index),
        )
        assert outcome.ok
        assert sorted(seen) == list(range(5))

    def test_keep_values_false_drops_values_after_hook(self, tmp_path):
        from repro.runner.faultfns import sleepy_point

        values = []
        outcome = run_sweep(
            Sweep(name="dropped", fn=sleepy_point,
                  grid=self._grid(tmp_path), base_seed=1),
            on_point=lambda p: values.append(p.value),
            keep_values=False,
        )
        # the hook saw real values; the returned result carries none
        assert all(v is not None for v in values) and len(values) == 5
        assert all(p.value is None for p in outcome.points)
        # timings and params survive the drop
        assert all(p.wall_s >= 0.0 and p.params for p in outcome.points)

    def test_cache_hits_stream_first_in_grid_order(self, tmp_path):
        from repro.runner.faultfns import sleepy_point

        sweep = Sweep(name="hits-first", fn=sleepy_point,
                      grid=self._grid(tmp_path), base_seed=1)
        run_sweep(sweep, cache_dir=tmp_path)
        seen = []
        outcome = run_sweep(sweep, cache_dir=tmp_path,
                            on_point=lambda p: seen.append((p.index, p.cached)))
        assert outcome.cached_count == 5
        assert seen == [(i, True) for i in range(5)]

    def test_hook_exception_aborts(self, tmp_path):
        from repro.runner.faultfns import sleepy_point

        def hook(point):
            raise RuntimeError("reducer broke")

        with pytest.raises(RuntimeError, match="reducer broke"):
            run_sweep(
                Sweep(name="aborting", fn=sleepy_point,
                      grid=self._grid(tmp_path), base_seed=1),
                on_point=hook,
            )

    def test_values_still_cached_when_dropped(self, tmp_path):
        from repro.runner.faultfns import sleepy_point

        sweep = Sweep(name="cache-kept", fn=sleepy_point,
                      grid=self._grid(tmp_path), base_seed=1)
        run_sweep(sweep, cache_dir=tmp_path, keep_values=False)
        # a second run with values kept is served from cache, proving the
        # drop happened after persistence
        again = run_sweep(sweep, cache_dir=tmp_path)
        assert again.cached_count == 5
        assert [p.value["index"] for p in again.points] == list(range(5))
