"""GOP media model: structure, byte accounting, tolerant fraction."""

from __future__ import annotations

import pytest

from repro.media.codec import FrameType, make_media_object


@pytest.fixture(scope="module")
def media():
    return make_media_object(size_bytes=200_000, seed=3)


class TestStructure:
    def test_frames_tile_object_exactly(self, media):
        offset = 0
        for gop in media.gops:
            for frame in gop.frames:
                assert frame.offset == offset
                offset = frame.end
        assert offset == media.size_bytes

    def test_every_gop_leads_with_i_frame(self, media):
        for gop in media.gops:
            assert gop.frames[0].frame_type is FrameType.I

    def test_data_matches_size(self, media):
        assert len(media.data) == media.size_bytes

    def test_tolerant_fraction_is_majority(self, media):
        """§4.2: 'error-tolerant frames ... compose most data in MPEG
        files' -- P/B frames must dominate bytes."""
        assert media.tolerant_fraction() > 0.6

    def test_critical_ranges_cover_all_i_frames(self, media):
        assert len(media.critical_ranges()) == len(media.gops)

    def test_gop_size_sums_frames(self, media):
        for gop in media.gops[:10]:
            assert gop.size_bytes == sum(f.size_bytes for f in gop.frames)


class TestGeneration:
    def test_too_small_object_rejected(self):
        with pytest.raises(ValueError):
            make_media_object(size_bytes=100)

    def test_deterministic_under_seed(self):
        a = make_media_object(50_000, seed=9)
        b = make_media_object(50_000, seed=9)
        assert a.data == b.data
        assert len(a.gops) == len(b.gops)

    def test_different_seeds_differ(self):
        a = make_media_object(50_000, seed=1)
        b = make_media_object(50_000, seed=2)
        assert a.data != b.data

    def test_gop_length_respected_roughly(self):
        media = make_media_object(500_000, gop_length=12, seed=0)
        # interior GOPs carry gop_length frames
        interior = media.gops[1:-1]
        assert interior
        assert all(len(g.frames) == 12 for g in interior)
