"""Quality metric: sensitivity ordering, propagation, measurement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media.codec import FrameType, make_media_object
from repro.media.quality import (
    frame_quality,
    gop_quality,
    measure_quality,
    quality_to_psnr_db,
)


class TestFrameQuality:
    def test_zero_ber_is_perfect(self):
        for ftype in FrameType:
            assert frame_quality(0.0, ftype) == 1.0

    def test_sensitivity_ordering_i_worse_than_p_worse_than_b(self):
        ber = 1e-4
        q_i = frame_quality(ber, FrameType.I)
        q_p = frame_quality(ber, FrameType.P)
        q_b = frame_quality(ber, FrameType.B)
        assert q_i < q_p < q_b

    def test_monotone_in_ber(self):
        qs = [frame_quality(b, FrameType.P) for b in (0, 1e-5, 1e-4, 1e-3)]
        assert qs == sorted(qs, reverse=True)

    def test_negative_ber_rejected(self):
        with pytest.raises(ValueError):
            frame_quality(-1e-5, FrameType.I)

    @given(ber=st.floats(min_value=0, max_value=1))
    @settings(max_examples=50, deadline=None)
    def test_quality_in_unit_interval(self, ber):
        for ftype in FrameType:
            assert 0.0 <= frame_quality(ber, ftype) <= 1.0


class TestGopPropagation:
    def test_i_frame_errors_poison_whole_gop(self):
        media = make_media_object(50_000, seed=1)
        gop = media.gops[0]
        n = len(gop.frames)
        # same BER placed on the I frame vs on one B frame
        i_hit = gop_quality([5e-4] + [0.0] * (n - 1), gop)
        b_index = next(
            i for i, f in enumerate(gop.frames) if f.frame_type is FrameType.B
        )
        bers = [0.0] * n
        bers[b_index] = 5e-4
        b_hit = gop_quality(bers, gop)
        assert i_hit < b_hit

    def test_mismatched_ber_count_rejected(self):
        media = make_media_object(50_000, seed=1)
        with pytest.raises(ValueError):
            gop_quality([0.0], media.gops[0])


class TestMeasurement:
    def test_perfect_readback_scores_one(self):
        media = make_media_object(30_000, seed=2)
        report = measure_quality(media, media.data)
        assert report.quality == pytest.approx(1.0)
        assert report.mean_ber == 0.0
        assert report.acceptable

    def test_corruption_lowers_quality(self, rng):
        media = make_media_object(30_000, seed=2)
        noisy = bytearray(media.data)
        for pos in rng.choice(len(noisy), size=200, replace=False):
            noisy[pos] ^= 0xFF
        report = measure_quality(media, bytes(noisy))
        assert report.quality < 1.0
        assert report.mean_ber > 0
        assert report.worst_gop_quality <= report.quality + 1e-9

    def test_short_readback_rejected(self):
        media = make_media_object(30_000, seed=2)
        with pytest.raises(ValueError):
            measure_quality(media, media.data[:-1])

    def test_i_frame_corruption_hurts_more_than_b(self, rng):
        media = make_media_object(60_000, seed=4)
        i_start, i_end = media.critical_ranges()[0]
        # corrupt the same number of bytes in an I frame vs a B frame
        nbytes = min(40, i_end - i_start)
        noisy_i = bytearray(media.data)
        for pos in range(i_start, i_start + nbytes):
            noisy_i[pos] ^= 0xFF
        b_frame = next(
            f for g in media.gops for f in g.frames
            if f.frame_type is FrameType.B and f.size_bytes >= nbytes
        )
        noisy_b = bytearray(media.data)
        for pos in range(b_frame.offset, b_frame.offset + nbytes):
            noisy_b[pos] ^= 0xFF
        q_i = measure_quality(media, bytes(noisy_i)).quality
        q_b = measure_quality(media, bytes(noisy_b)).quality
        assert q_i < q_b


class TestPsnrMapping:
    def test_endpoints(self):
        assert quality_to_psnr_db(1.0) == pytest.approx(40.0)
        assert quality_to_psnr_db(0.0) == pytest.approx(15.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quality_to_psnr_db(1.1)
