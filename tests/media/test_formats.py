"""Format models beyond video: photos and audio (§4.2 future work)."""

from __future__ import annotations

import pytest

from repro.media.codec import (
    FrameType,
    make_audio_object,
    make_media_object,
    make_photo_object,
)
from repro.media.quality import measure_quality


class TestPhotoFormat:
    def test_structure_tiles_exactly(self):
        photo = make_photo_object(50_000, seed=1)
        assert len(photo.gops) == 1
        offset = 0
        for frame in photo.gops[0].frames:
            assert frame.offset == offset
            offset = frame.end
        assert offset == photo.size_bytes

    def test_header_is_small_critical_fraction(self):
        photo = make_photo_object(50_000, seed=1)
        critical = sum(e - s for s, e in photo.critical_ranges())
        assert critical / photo.size_bytes < 0.10
        assert photo.tolerant_fraction() > 0.6

    def test_header_damage_worse_than_scan_damage(self):
        photo = make_photo_object(50_000, seed=2)
        header = photo.gops[0].frames[0]
        last_scan = photo.gops[0].frames[-1]
        nbytes = min(60, header.size_bytes, last_scan.size_bytes)
        hdr_hit = bytearray(photo.data)
        for i in range(header.offset, header.offset + nbytes):
            hdr_hit[i] ^= 0xFF
        scan_hit = bytearray(photo.data)
        for i in range(last_scan.offset, last_scan.offset + nbytes):
            scan_hit[i] ^= 0xFF
        q_header = measure_quality(photo, bytes(hdr_hit)).quality
        q_scan = measure_quality(photo, bytes(scan_hit)).quality
        assert q_header < q_scan

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            make_photo_object(100)


class TestAudioFormat:
    def test_many_independent_frames(self):
        audio = make_audio_object(64_000, frame_bytes=1024, seed=3)
        assert len(audio.gops) >= 60
        for gop in audio.gops:
            assert gop.frames[0].frame_type is FrameType.I

    def test_damage_is_localized(self):
        """Corrupting one audio frame's payload must not drag file quality
        below the per-frame damage (no cross-frame propagation)."""
        audio = make_audio_object(64_000, seed=4)
        victim = audio.gops[10].frames[-1]
        noisy = bytearray(audio.data)
        for i in range(victim.offset, victim.end):
            noisy[i] ^= 0xFF
        report = measure_quality(audio, bytes(noisy))
        # one destroyed frame out of ~60: file quality stays high
        assert report.quality > 0.95
        assert report.worst_gop_quality < 0.1

    def test_audio_most_tolerant_format(self):
        """Byte-for-byte, audio has the highest tolerant fraction of the
        three formats -- the §4.2 ordering (bank app < photos < media)."""
        video = make_media_object(60_000, seed=5).tolerant_fraction()
        photo = make_photo_object(60_000, seed=5).tolerant_fraction()
        audio = make_audio_object(60_000, seed=5).tolerant_fraction()
        assert audio > 0.85
        assert audio > video
        assert photo > 0.6

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            make_audio_object(100)
