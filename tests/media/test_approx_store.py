"""Approximate store: layouts, placement, quality audit, repair."""

from __future__ import annotations

import pytest

from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.chip import FlashChip
from repro.flash.geometry import Geometry
from repro.ftl.ftl import Ftl
from repro.ftl.streams import StreamConfig
from repro.host.block_layer import BlockLayer
from repro.host.hints import Placement
from repro.media.approx_store import ApproximateStore, MediaLayout
from repro.media.codec import make_media_object

# a roomier geometry so a media object fits comfortably
GEOM = Geometry(page_size_bytes=512, pages_per_block=16, blocks_per_plane=64,
                planes_per_die=2, dies=1)


@pytest.fixture
def layer() -> BlockLayer:
    chip = FlashChip(GEOM, CellTechnology.PLC, seed=5)
    total = GEOM.total_blocks
    streams = [
        StreamConfig("sys", pseudo_mode(CellTechnology.PLC, 4), POLICIES[ProtectionLevel.STRONG]),
        StreamConfig("spare", native_mode(CellTechnology.PLC), POLICIES[ProtectionLevel.NONE]),
    ]
    ftl = Ftl(chip, streams,
              {"sys": list(range(total // 2)), "spare": list(range(total // 2, total))})
    return BlockLayer(ftl)


@pytest.fixture
def media():
    return make_media_object(20_000, seed=8)


class TestLayouts:
    def test_full_spare_places_everything_on_spare(self, layer, media):
        store = ApproximateStore(layer)
        stored = store.store(media, MediaLayout.FULL_SPARE)
        assert stored.spare_fraction == 1.0
        assert all(p is Placement.SPARE for p in stored.placements)

    def test_full_sys_places_everything_on_sys(self, layer, media):
        store = ApproximateStore(layer)
        stored = store.store(media, MediaLayout.FULL_SYS)
        assert stored.spare_fraction == 0.0

    def test_hybrid_keeps_i_frames_on_sys(self, layer, media):
        store = ApproximateStore(layer)
        stored = store.store(media, MediaLayout.HYBRID)
        # I-frames are a minority of bytes but must be on SYS
        assert 0.0 < stored.spare_fraction < 1.0
        page_bytes = layer.page_bytes
        critical = media.critical_ranges()
        for i, placement in enumerate(stored.placements):
            offset = i * page_bytes
            end = offset + page_bytes
            overlaps_i = any(offset < ce and cs < end for cs, ce in critical)
            if overlaps_i:
                assert placement is Placement.SYS

    def test_hybrid_majority_of_pages_on_spare(self, layer, media):
        """The density win requires most media bytes on SPARE."""
        store = ApproximateStore(layer)
        stored = store.store(media, MediaLayout.HYBRID)
        assert stored.spare_fraction > 0.5


class TestReadback:
    def test_fresh_quality_near_perfect(self, layer, media):
        store = ApproximateStore(layer)
        stored = store.store(media, MediaLayout.HYBRID)
        report = store.audit_quality(stored)
        assert report.quality > 0.98

    def test_wear_degrades_full_spare_more_than_hybrid(self, layer, media):
        store = ApproximateStore(layer)
        spare_obj = store.store(media, MediaLayout.FULL_SPARE)
        hybrid_obj = store.store(
            make_media_object(20_000, seed=8), MediaLayout.HYBRID
        )
        # age the device: spare blocks wear + retention
        chip = layer.ftl.chip
        for i in layer.ftl.stream("spare").blocks:
            chip.blocks[i].pec = 900  # past native PLC rating
        chip.advance_time(1.0)
        q_spare = store.audit_quality(spare_obj).quality
        q_hybrid = store.audit_quality(hybrid_obj).quality
        assert q_spare < q_hybrid

    def test_rewrite_restores_quality(self, layer, media):
        store = ApproximateStore(layer)
        stored = store.store(media, MediaLayout.FULL_SPARE)
        chip = layer.ftl.chip
        for i in layer.ftl.stream("spare").blocks:
            chip.blocks[i].pec = 1200
        chip.advance_time(1.5)
        degraded = store.audit_quality(stored).quality
        store.rewrite(stored)
        restored = store.audit_quality(stored).quality
        assert restored > degraded
