"""Majority-vote read-back: transient-error suppression on SPARE."""

from __future__ import annotations

import pytest

from repro.core.config import default_config
from repro.core.partitions import build_partitions
from repro.flash.geometry import Geometry
from repro.host.block_layer import BlockLayer
from repro.media.approx_store import ApproximateStore, MediaLayout
from repro.media.codec import make_media_object

GEOM = Geometry(page_size_bytes=512, pages_per_block=16, blocks_per_plane=64,
                planes_per_die=2, dies=1)


@pytest.fixture
def worn_store():
    device = build_partitions(default_config(seed=51, geometry=GEOM))
    layer = BlockLayer(device.ftl)
    store = ApproximateStore(layer)
    media = make_media_object(16_000, seed=5)
    stored = store.store(media, MediaLayout.FULL_SPARE)
    # substantial transient error rate: worn + aged
    for i in device.ftl.stream("spare").blocks:
        device.chip.blocks[i].pec = 600
    device.chip.advance_time(1.0)
    return store, stored


class TestMajorityVote:
    def test_voting_improves_quality_on_transient_errors(self, worn_store):
        store, stored = worn_store
        single = store.audit_quality(stored, votes=1).quality
        voted = store.audit_quality(stored, votes=5).quality
        assert voted > single

    def test_more_votes_monotone_ish(self, worn_store):
        store, stored = worn_store
        q3 = store.audit_quality(stored, votes=3).quality
        q7 = store.audit_quality(stored, votes=7).quality
        assert q7 >= q3 - 0.02  # allow sampling wobble

    def test_even_votes_rejected(self, worn_store):
        store, stored = worn_store
        with pytest.raises(ValueError):
            store.read_back(stored, votes=2)
        with pytest.raises(ValueError):
            store.read_back(stored, votes=0)

    def test_single_vote_is_default(self, worn_store):
        store, stored = worn_store
        data = store.read_back(stored)
        assert len(data) == stored.media.size_bytes

    def test_voting_cannot_fix_baked_in_errors(self):
        """Errors written into the medium (a degraded rewrite) are the
        same on every read: voting must not 'repair' them."""
        device = build_partitions(default_config(seed=52, geometry=GEOM))
        layer = BlockLayer(device.ftl)
        store = ApproximateStore(layer)
        media = make_media_object(8_000, seed=6)
        stored = store.store(media, MediaLayout.FULL_SPARE)
        # bake in corruption: rewrite with flipped bytes
        corrupted = bytearray(media.data)
        for i in range(0, len(corrupted), 97):
            corrupted[i] ^= 0xFF
        store.rewrite(stored, bytes(corrupted))
        single = store.audit_quality(stored, votes=1).quality
        voted = store.audit_quality(stored, votes=5).quality
        assert voted == pytest.approx(single, abs=0.02)
        assert voted < 0.9  # the damage is permanent
