"""Integration: the full SOS pipeline on the bit-exact device.

Drives Figure 2 end to end -- create a realistic file population, run the
daemon over simulated months, verify the system-level guarantees:
critical data integrity, media demotion, degradation containment, and
graceful capacity behaviour.
"""

from __future__ import annotations

import pytest

from repro.core.config import default_config
from repro.core.sos_device import SOSDevice
from repro.flash.geometry import Geometry
from repro.host.files import FileAttributes, FileKind
from repro.host.hints import Placement

pytestmark = pytest.mark.slow

GEOM = Geometry(page_size_bytes=512, pages_per_block=16, blocks_per_plane=48,
                planes_per_die=2, dies=1)


@pytest.fixture(scope="module")
def populated_device(make_rng):
    device = SOSDevice(default_config(seed=8, geometry=GEOM))
    rng = make_rng(21)
    reference = {}
    # critical system + personal data
    for i in range(3):
        path = f"/system/lib{i}"
        payload = rng.bytes(400)
        device.create_file(path, FileKind.OS_SYSTEM, 1600,
                           content=lambda o, p=payload: p)
        reference[path] = payload
    keeper_attrs = FileAttributes(
        created_years=0.0, last_access_years=0.0, user_favorite=True,
        has_known_faces=True, access_count=120, cloud_backed=True,
    )
    for i in range(3):
        path = f"/photos/family{i}"
        payload = rng.bytes(400)
        device.create_file(path, FileKind.PHOTO, 2000, attributes=keeper_attrs,
                           content=lambda o, p=payload: p)
        reference[path] = payload
    junk_attrs = FileAttributes(
        created_years=0.0, last_access_years=0.0, is_screenshot=True,
        duplicate_count=4, access_count=1, cloud_backed=False,
    )
    for i in range(10):
        path = f"/photos/screenshot{i}"
        payload = rng.bytes(400)
        device.create_file(path, FileKind.PHOTO, 2000, attributes=junk_attrs,
                           content=lambda o, p=payload: p)
        reference[path] = payload
    # run the daemon monthly for a simulated year
    for month in range(1, 13):
        device.advance_time(month / 12)
        device.run_daemon()
    return device, reference


class TestPlacementOutcome:
    def test_system_files_on_sys(self, populated_device):
        device, _ = populated_device
        for i in range(3):
            record = device.filesystem.lookup(f"/system/lib{i}")
            assert device.placement.placement_of(record) is Placement.SYS

    def test_majority_of_junk_demoted(self, populated_device):
        device, _ = populated_device
        demoted = sum(
            1
            for i in range(10)
            if device.placement.placement_of(
                device.filesystem.lookup(f"/photos/screenshot{i}")
            )
            is Placement.SPARE
        )
        assert demoted >= 7

    def test_keepers_not_demoted(self, populated_device):
        device, _ = populated_device
        for i in range(3):
            record = device.filesystem.lookup(f"/photos/family{i}")
            assert device.placement.placement_of(record) is Placement.SYS


class TestDataIntegrity:
    def test_sys_data_bit_exact_after_a_year(self, populated_device):
        """Strong ECC on pseudo-QLC: critical data loses nothing."""
        device, reference = populated_device
        for i in range(3):
            path = f"/system/lib{i}"
            page = device.filesystem.read_file(path)[0]
            assert page[:400] == reference[path]

    def test_spare_data_survives_with_bounded_degradation(self, populated_device):
        """Unprotected PLC after a year: bit errors may exist but must be
        rare at low wear (the §4.2 bet)."""
        device, reference = populated_device
        total_bits = 0
        error_bits = 0
        for i in range(10):
            path = f"/photos/screenshot{i}"
            pages = device.filesystem.read_file(path)
            record = device.filesystem.lookup(path)
            joined = b"".join(p[:400] for p in pages[:1])
            ref = reference[path]
            for a, b in zip(joined, ref):
                error_bits += bin(a ^ b).count("1")
            total_bits += len(ref) * 8
        ber = error_bits / total_bits
        assert ber < 1e-3

    def test_no_blocks_lost_under_normal_use(self, populated_device):
        device, _ = populated_device
        assert device.snapshot().blocks_retired == 0


class TestReporting:
    def test_carbon_summary_present(self, populated_device):
        device, _ = populated_device
        carbon = device.embodied_carbon()
        assert carbon.intensity_kg_per_gb == pytest.approx(0.108)

    def test_daemon_history_recorded(self, populated_device):
        device, _ = populated_device
        assert len(device.daemon.runs) == 12
