"""Fidelity cross-check: bit-exact chip vs epoch model agreement.

The two simulation fidelities share parameter tables; this suite verifies
they actually agree where their domains overlap, so lifetime results can
be trusted to reflect the bit-exact physics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecc.policy import POLICIES, ProtectionLevel
from repro.flash.block import Block
from repro.flash.cell import CellTechnology, native_mode
from repro.flash.error_model import ErrorModel
from repro.flash.geometry import Geometry
from repro.sim.lifetime import Partition, PartitionSpec

GEOM = Geometry(page_size_bytes=4096, pages_per_block=16, blocks_per_plane=8,
                planes_per_die=1, dies=1)


class TestRberAgreement:
    def test_block_rber_equals_group_rber_at_matched_state(self, make_rng):
        """A bit-exact block and an epoch group at the same (pec, age)
        must predict the same RBER."""
        mode = native_mode(CellTechnology.PLC)
        block = Block(GEOM, mode, make_rng(0))
        block.pec = 300
        block.program(0, b"x")
        block.advance_time(1.2)

        spec = PartitionSpec(
            name="p", mode=mode, protection=POLICIES[ProtectionLevel.NONE],
            capacity_gb=1.0, n_groups=1,
        )
        partition = Partition(spec)
        group = partition.groups[0]
        group.pec = 300
        group.live_gb = 0.5
        group.mean_write_time = 0.0

        assert block.rber_now(0, now_years=1.2) == pytest.approx(
            group.rber(now=1.2), rel=1e-9
        )

    def test_injected_error_rate_matches_model(self, make_rng):
        """Monte-Carlo: the block's injected bit-error rate converges to
        the analytic model's prediction."""
        mode = native_mode(CellTechnology.PLC)
        rng = make_rng(5)
        block = Block(GEOM, mode, rng)
        block.pec = 800
        payload = b"\x00" * GEOM.page_size_bytes
        block.program(0, payload)
        block.advance_time(1.0)
        predicted = block.rber_now(0)
        # read repeatedly, counting flipped bits (read disturb shifts the
        # prediction slightly; take prediction fresh each read)
        total_bits = 0
        error_bits = 0
        for _ in range(40):
            data = block.read(0)
            error_bits += sum(b.bit_count() for b in data)
            total_bits += GEOM.page_size_bytes * 8
        observed = error_bits / total_bits
        assert observed == pytest.approx(predicted, rel=0.25)


class TestResidualAgreement:
    def test_page_codec_residual_matches_analytic_model(self, make_rng):
        """Inject errors at a known RBER through the STRONG page codec and
        compare the delivered error rate to residual_ber()."""
        from repro.ecc.page_codec import PageCodec

        policy = POLICIES[ProtectionLevel.STRONG]
        codec = PageCodec(policy, page_size_bytes=512)
        rng = make_rng(9)
        rber = 8e-3  # near the failure knee so both paths see failures
        payload = bytes(rng.integers(0, 256, codec.payload_bytes, dtype=np.uint8))
        delivered_errors = 0
        total_bits = 0
        trials = 30
        for _ in range(trials):
            page = bytearray(codec.encode(payload))
            bits = np.unpackbits(np.frombuffer(bytes(page), dtype=np.uint8))
            flips = rng.random(bits.size) < rber
            bits ^= flips.astype(np.uint8)
            noisy = np.packbits(bits).tobytes()
            result = codec.decode(noisy)
            for a, b in zip(result.payload, payload):
                delivered_errors += (a ^ b).bit_count()
            total_bits += codec.payload_bytes * 8
        observed = delivered_errors / total_bits
        predicted = policy.residual_ber(rber)
        # the analytic model approximates miscorrection weight; allow 2x band
        assert observed == pytest.approx(predicted, rel=1.0)
        assert observed > 0
