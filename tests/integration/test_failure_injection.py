"""Failure injection: sudden block death, mass wear, hostile conditions.

The §4 guarantees that matter are negative ones: critical data must not
be lost when the cheap medium misbehaves.  These tests inject failures
harsher than the stochastic model produces -- whole-block corruption,
instant mass wear -- and verify the protection machinery (BCH, block
parity, scrubbing, retirement) holds the line where it is supposed to
and degrades where degradation is the design.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import default_config
from repro.core.sos_device import SOSDevice
from repro.flash.geometry import Geometry
from repro.host.files import FileAttributes, FileKind
from repro.host.hints import Placement

pytestmark = pytest.mark.slow

GEOM = Geometry(page_size_bytes=512, pages_per_block=16, blocks_per_plane=48,
                planes_per_die=2, dies=1)


@pytest.fixture
def device() -> SOSDevice:
    return SOSDevice(default_config(seed=31, geometry=GEOM))


def _corrupt_page(block, page_index: int, nbytes: int = 120) -> None:
    state = block.page_info(page_index)
    corrupted = bytearray(state.data.tobytes())
    for i in range(nbytes):
        corrupted[i] ^= 0xFF
    state.data = np.frombuffer(bytes(corrupted), dtype=np.uint8).copy()


class TestSysResilience:
    def test_single_page_corruption_recovered_by_parity(self, device, rng):
        """A burst that defeats per-page BCH is absorbed by block parity."""
        payloads = {}
        # fill several sys blocks completely (so parity pages are sealed)
        data_pages = 16 * 4 // 5 - 1  # usable pages minus parity
        for i in range(3 * (data_pages + 1)):
            path = f"/sys/file{i}"
            payload = rng.bytes(400)
            device.create_file(path, FileKind.OS_SYSTEM, 400,
                               content=lambda o, p=payload: p)
            payloads[path] = payload
        # find a sealed sys block with live data and smash one page
        sealed = next(
            i for i in device.ftl.stream("sys").blocks
            if device.chip.blocks[i].free_pages == 0
            and device.ftl.page_map.valid_pages(i) > 0
        )
        page_index, lpn = device.ftl.page_map.live_lpns(sealed)[0]
        _corrupt_page(device.chip.blocks[sealed], page_index)
        result = device.ftl.read(lpn)
        assert result.uncorrectable_codewords == 0
        assert device.ftl.stats.parity_recoveries >= 1

    def test_scattered_bitflips_corrected_by_bch(self, device, rng):
        payload = rng.bytes(400)
        record = device.create_file("/sys/cfg", FileKind.OS_SYSTEM, 400,
                                    content=lambda o: payload)
        addr = device.ftl.page_map.lookup(record.extents[0])
        block = device.chip.blocks[addr[0]]
        state = block.page_info(addr[1])
        corrupted = bytearray(state.data.tobytes())
        for pos in (3, 100, 200, 300, 400):  # < t=8 per codeword
            corrupted[pos] ^= 0x01
        state.data = np.frombuffer(bytes(corrupted), dtype=np.uint8).copy()
        page = device.filesystem.read_file("/sys/cfg")[0]
        assert page[:400] == payload


class TestSpareDegradation:
    def test_spare_corruption_passes_through_not_crashes(self, device, rng):
        """SPARE has no ECC: corruption shows up in the payload, never
        as an exception -- degraded data is the contract."""
        payload = rng.bytes(400)
        record = device.create_file(
            "/photos/old.jpg", FileKind.PHOTO, 400,
            attributes=FileAttributes(is_screenshot=True, duplicate_count=5),
            content=lambda o: payload,
        )
        for lpn in record.extents:
            device.block_layer.relocate(lpn, Placement.SPARE)
        addr = device.ftl.page_map.lookup(record.extents[0])
        _corrupt_page(device.chip.blocks[addr[0]], addr[1], nbytes=40)
        page = device.filesystem.read_file("/photos/old.jpg")[0]
        assert page[:400] != payload  # degraded
        assert len(page) >= 400  # but served

    def test_mass_wear_triggers_retirement_not_data_loss_on_sys(self, device, rng):
        """All SPARE blocks jump past end-of-life at once; SYS data stays
        bit-exact and the device keeps operating."""
        sys_payload = rng.bytes(400)
        device.create_file("/sys/keeper", FileKind.OS_SYSTEM, 400,
                           content=lambda o: sys_payload)
        for i in device.ftl.stream("spare").blocks:
            device.chip.blocks[i].pec = 100_000
        device.advance_time(0.5)
        device.run_daemon()  # health checks fire
        snapshot = device.snapshot()
        assert snapshot.blocks_retired + snapshot.blocks_resuscitated > 0
        page = device.filesystem.read_file("/sys/keeper")[0]
        assert page[:400] == sys_payload


class TestCloudRescueUnderFailure:
    def test_backed_spare_file_fully_recovers_after_block_death(self, device, rng):
        payload = rng.bytes(400)
        record = device.create_file(
            "/photos/backed.jpg", FileKind.PHOTO, 400,
            attributes=FileAttributes(cloud_backed=True, is_screenshot=True),
            content=lambda o: payload,
        )
        for lpn in record.extents:
            device.block_layer.relocate(lpn, Placement.SPARE)
        # block hosting it wears out badly
        addr = device.ftl.page_map.lookup(record.extents[0])
        device.chip.blocks[addr[0]].pec = 5000
        device.advance_time(0.5)
        device.run_daemon()  # scrubber repairs from cloud
        page = device.filesystem.read_file("/photos/backed.jpg")[0]
        assert page[:400] == payload
