"""JEDEC-style qualification of the simulated flash technologies.

A qualification procedure analogous to JESD47/JESD22 retention bake:
cycle a block to its rated endurance, write a known pattern, simulate
the rated retention period, read back, and require the error rate to be
within what the class's standard ECC can correct.  If the simulated
silicon failed its own datasheet, every experiment above it would be
meaningless -- this suite pins the calibration.
"""

from __future__ import annotations

import pytest

from repro.ecc.model import CodewordSpec, codeword_failure_prob
from repro.flash.block import Block
from repro.flash.cell import CellTechnology, native_mode, pseudo_mode
from repro.flash.error_model import ErrorModel
from repro.flash.geometry import SMALL_GEOMETRY

pytestmark = pytest.mark.slow
from repro.flash.reliability import endurance_pec, retention_years

#: Per-class qualification ECC: denser flash ships stronger correction
#: (TLC-era parts used BCH-t~8/KB; QLC/PLC-class parts use LDPC with an
#: effective correction strength several times higher).
QUAL_SPECS = {
    CellTechnology.SLC: CodewordSpec(n=1023, k=993, t=3),
    CellTechnology.MLC: CodewordSpec(n=1023, k=973, t=5),
    CellTechnology.TLC: CodewordSpec(n=1023, k=943, t=8),
    CellTechnology.QLC: CodewordSpec(n=1023, k=863, t=16),
    CellTechnology.PLC: CodewordSpec(n=1023, k=723, t=30),
}
#: Qualification pass bar: codeword failure probability at end of life.
MAX_CW_FAILURE = 1e-4


class TestDatasheetQualification:
    @pytest.mark.parametrize("technology", list(CellTechnology))
    def test_rated_endurance_plus_rated_retention_is_correctable(self, technology):
        """At rated PEC and rated retention, standard ECC must hold."""
        mode = native_mode(technology)
        model = ErrorModel(mode)
        rber = model.rber(
            pec=endurance_pec(mode), years_since_write=retention_years(mode)
        )
        p_fail = codeword_failure_prob(QUAL_SPECS[technology], rber)
        assert p_fail <= MAX_CW_FAILURE, (
            f"{technology.name} fails qualification: RBER {rber:.2e} -> "
            f"P(cw fail) {p_fail:.2e}"
        )

    @pytest.mark.parametrize("technology", list(CellTechnology))
    def test_double_rated_wear_violates_qualification(self, technology):
        """The rating must be meaningful: 3x wear + 2x retention must be
        visibly worse than at rating (otherwise endurance numbers would
        be arbitrary)."""
        mode = native_mode(technology)
        model = ErrorModel(mode)
        at_rating = model.rber(endurance_pec(mode), retention_years(mode))
        beyond = model.rber(3 * endurance_pec(mode), 2 * retention_years(mode))
        assert beyond > 5 * at_rating

    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_pseudo_modes_qualify_on_worn_plc(self, bits):
        """§4.3 resuscitation only works if a pseudo mode on *worn* PLC
        silicon still meets the qualification bar at its own rating."""
        mode = pseudo_mode(CellTechnology.PLC, bits)
        model = ErrorModel(mode)
        # silicon already cycled to full native-PLC rating before rebirth
        native_wear = endurance_pec(native_mode(CellTechnology.PLC))
        rber = model.rber(
            pec=native_wear + endurance_pec(mode) * 0.25,
            years_since_write=retention_years(mode),
        )
        spec = QUAL_SPECS[CellTechnology(bits)]
        assert codeword_failure_prob(spec, rber) <= MAX_CW_FAILURE * 100


class TestBitExactBake:
    """Monte-Carlo bake on the bit-exact block, cross-checking the
    analytic qualification above."""

    def test_tlc_bake_readback_error_rate(self, make_rng):
        mode = native_mode(CellTechnology.TLC)
        rng = make_rng(17)
        block = Block(SMALL_GEOMETRY, mode, rng)
        block.pec = endurance_pec(mode)
        pattern = bytes(range(256)) * 2
        block.program(0, pattern)
        block.advance_time(retention_years(mode))
        predicted = block.rber_now(0)
        errors = 0
        total = 0
        for _ in range(60):
            data = block.read(0)
            errors += sum((a ^ b).bit_count() for a, b in zip(data, pattern))
            total += len(pattern) * 8
        observed = errors / total
        assert observed == pytest.approx(predicted, rel=0.5)

    def test_fresh_block_bakes_clean(self, make_rng):
        """Zero wear, zero retention: SLC block reads back bit-exact."""
        mode = native_mode(CellTechnology.SLC)
        block = Block(SMALL_GEOMETRY, mode, make_rng(3))
        pattern = b"\x5a" * SMALL_GEOMETRY.page_size_bytes
        block.program(0, pattern)
        assert block.read(0) == pattern
