"""Integration-test guardrails.

Every test in this directory runs whole-device scenarios with day loops
and convergence conditions; a regression that stops a loop from
terminating would hang the suite.  Opt the whole directory into the
shared wall-clock clamp from ``tests/conftest.py``.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _clamped(wall_clock_clamp):
    """Apply the shared SIGALRM wall-clock clamp to every test here."""
    yield
