"""End-to-end gateway robustness: a real asyncio server on an ephemeral
port, driven through the real client, against real worker pools.

Each test tells one degradation story from the ISSUE's acceptance list:
over-quota clients are rejected deterministically while admitted work
completes; the queue refuses rather than buffers; cancellation tears
down in-flight workers; an unhealthy gateway sheds new submissions,
drains what is running, and recovers when the window ages out.
"""

from __future__ import annotations

import pytest

import asyncio

from repro.serve import ClientQuota, GatewayConfig, HealthThresholds


def _config(tmp_path, **overrides) -> GatewayConfig:
    defaults = dict(
        state_dir=tmp_path / "state",
        max_running=2,
        max_queue=16,
        job_workers=2,
        retries=2,
        rate_per_s=1000.0,
        burst=1000.0,
    )
    defaults.update(overrides)
    return GatewayConfig(**defaults)


def _tiny_population(seed=1, devices=12):
    return {"devices": devices, "days": 20, "seed": seed, "shard_size": 6}


async def _poll_health(client, want_status: int, timeout_s: float = 5.0):
    """Health folds just after a job's terminal state becomes visible;
    wait out that tiny scheduler race instead of asserting against it."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while True:
        status, report, headers = await client.health()
        if status == want_status or loop.time() >= deadline:
            return status, report, headers
        await asyncio.sleep(0.02)


def _sleepy(sleep_s: float, n: int = 1, tag: int = 0):
    return {
        "fn": "sleepy",
        "grid": [{"index": i, "sleep_s": sleep_s, "tag": tag} for i in range(n)],
        "base_seed": 1,
    }


class TestAdmissionPipeline:
    def test_over_quota_clients_reject_deterministically_while_admitted_complete(
        self, tmp_path, gateway_harness, run_async
    ):
        """Acceptance: N concurrent submissions beyond quota all answer
        429 with a concrete retry-after; the admitted jobs run to
        completion untouched; a freed slot admits again."""
        config = _config(tmp_path, quota=ClientQuota(max_concurrent=1))

        async def scenario():
            async with gateway_harness(config) as (gateway, client):
                status, body, _ = await client.submit(
                    "greedy", "sweep", _sleepy(1.5, n=2)
                )
                assert status == 202
                admitted_id = body["job_id"]

                # 4 concurrent over-quota submissions: all rejected the
                # same way, with the same concrete retry hint
                rejects = await asyncio.gather(*[
                    client.submit("greedy", "sweep", _sleepy(0.1, tag=i))
                    for i in range(1, 5)
                ])
                assert [s for s, _, _ in rejects] == [429] * 4
                for _, reject_body, headers in rejects:
                    assert "quota exceeded" in reject_body["error"]
                    assert reject_body["retry_after_s"] == 1.0
                    assert headers["retry-after"] == "1"

                # another tenant is not collateral damage
                status, body, _ = await client.submit(
                    "polite", "population", _tiny_population()
                )
                assert status == 202
                polite = await client.wait(body["job_id"], timeout_s=60)
                assert polite["state"] == "done"
                assert polite["result"]["complete"] is True

                admitted = await client.wait(admitted_id, timeout_s=60)
                assert admitted["state"] == "done"

                # the slot freed: a previously rejected job now admits
                status, _, _ = await client.submit(
                    "greedy", "sweep", _sleepy(0.1, tag=1)
                )
                assert status == 202

                _, health, _ = await client.health()
                assert health["counters"]["serve.shed.quota"] == 4

        run_async(scenario())

    def test_rate_limit_answers_429_with_retry_after(
        self, tmp_path, gateway_harness, run_async
    ):
        config = _config(tmp_path, rate_per_s=0.01, burst=2.0)

        async def scenario():
            async with gateway_harness(config) as (_, client):
                for tag in range(2):
                    status, _, _ = await client.submit(
                        "c", "sweep", _sleepy(0.05, tag=tag)
                    )
                    assert status == 202
                status, body, headers = await client.submit(
                    "c", "sweep", _sleepy(0.05, tag=9)
                )
                assert status == 429
                assert body["error"] == "rate limit exceeded"
                assert body["retry_after_s"] > 50  # ~1 token / 0.01 per s
                assert int(headers["retry-after"]) >= 1

        run_async(scenario())

    def test_full_queue_refuses_and_refunds_the_quota(
        self, tmp_path, gateway_harness, run_async
    ):
        config = _config(tmp_path, max_running=1, max_queue=1)

        async def scenario():
            async with gateway_harness(config) as (gateway, client):
                statuses = []
                for name in ("c1", "c2", "c3"):
                    status, body, _ = await client.submit(
                        name, "sweep", _sleepy(1.0)
                    )
                    statuses.append((status, body))
                assert statuses[0][0] == 202  # running
                assert statuses[1][0] == 202  # queued
                status, body = statuses[2]
                assert status == 429
                assert "backpressure" in body["error"]
                # the queue-full refusal must undo the quota reservation
                assert gateway.quotas.running("c3") == 0
                assert gateway.quotas.running("c2") == 1

        run_async(scenario())

    def test_resubmission_reattaches_instead_of_respending(
        self, tmp_path, gateway_harness, run_async
    ):
        async def scenario():
            async with gateway_harness(_config(tmp_path)) as (_, client):
                status, body, _ = await client.submit(
                    "c", "population", _tiny_population()
                )
                assert status == 202
                done = await client.wait(body["job_id"], timeout_s=60)
                status, again, _ = await client.submit(
                    "c", "population", _tiny_population()
                )
                assert status == 200
                assert again["deduplicated"] is True
                assert again["job_id"] == done["job_id"]
                assert again["state"] == "done"
                assert again["result"] == done["result"]
                _, health, _ = await client.health()
                assert health["counters"]["serve.deduplicated"] == 1
                assert health["counters"]["serve.admitted"] == 1

        run_async(scenario())

    def test_routing_rejects_unknown_paths_and_methods(
        self, tmp_path, gateway_harness, run_async
    ):
        async def scenario():
            async with gateway_harness(_config(tmp_path)) as (_, client):
                status, _, _ = await client.request("GET", "/nope")
                assert status == 404
                status, _, _ = await client.request("DELETE", "/jobs")
                assert status == 405
                status, _, _ = await client.request("POST", "/jobs", "not a dict")
                assert status == 400
                status, _, _ = await client.job("jdoesnotexist000")
                assert status == 404

        run_async(scenario())


class TestCancellation:
    def test_cancel_tears_down_an_in_flight_job(
        self, tmp_path, gateway_harness, run_async
    ):
        """The cancelled job's 30s of sleeping workers die immediately:
        reaching the terminal state fast is itself proof of teardown."""

        async def scenario():
            async with gateway_harness(_config(tmp_path)) as (_, client):
                status, body, _ = await client.submit(
                    "c", "sweep", _sleepy(30.0, n=2)
                )
                assert status == 202
                job_id = body["job_id"]
                while True:  # wait for it to leave the queue
                    _, view, _ = await client.job(job_id)
                    if view["state"] == "running":
                        break
                    await asyncio.sleep(0.02)
                status, body, _ = await client.cancel(job_id)
                assert status == 202 and body["cancel"] == "cancelling"
                view = await client.wait(job_id, timeout_s=20)
                assert view["state"] == "cancelled"
                assert "torn down" in view["error"]
                # a terminal job cannot be cancelled again
                status, _, _ = await client.cancel(job_id)
                assert status == 409

        run_async(scenario())

    def test_cancel_queued_job_is_instant(
        self, tmp_path, gateway_harness, run_async
    ):
        config = _config(tmp_path, max_running=1)

        async def scenario():
            async with gateway_harness(config) as (_, client):
                await client.submit("a", "sweep", _sleepy(5.0))
                status, queued, _ = await client.submit("b", "sweep", _sleepy(5.0))
                assert status == 202
                status, body, _ = await client.cancel(queued["job_id"])
                assert status == 202 and body["cancel"] == "cancelled"
                _, view, _ = await client.job(queued["job_id"])
                assert view["state"] == "cancelled"

        run_async(scenario())


class TestHealthDegradation:
    def test_unhealthy_gateway_sheds_drains_and_recovers(
        self, tmp_path, gateway_harness, run_async
    ):
        """Acceptance: past the failure threshold the gateway answers
        503 to new work, keeps serving status and dedup hits, finishes
        the jobs already in flight, and resumes admission once the
        rolling window clears."""
        config = _config(
            tmp_path,
            retries=0,
            thresholds=HealthThresholds(
                max_error_rate=0.5, min_sample=1, window=4
            ),
        )

        scratch = tmp_path / "scratch"
        scratch.mkdir()
        doomed_params = {
            "fn": "flaky",
            "grid": [{"index": 0, "fail_times": 99, "scratch": str(scratch)}],
            "base_seed": 0,
        }

        async def scenario():
            async with gateway_harness(config) as (_, client):
                # a slow healthy job that will still be running when the
                # gateway turns unhealthy -- it must drain normally
                status, slow, _ = await client.submit(
                    "c", "sweep", _sleepy(3.0, n=2)
                )
                assert status == 202
                # a job whose only point always raises: with no retries
                # it fails and trips the 1-sample error window
                status, doomed, _ = await client.submit(
                    "c", "sweep", doomed_params
                )
                assert status == 202
                failed = await client.wait(doomed["job_id"], timeout_s=60)
                assert failed["state"] == "done"  # ran, with failed points
                assert failed["result"]["complete"] is False

                # the health fold happens just after the terminal state
                # becomes visible; poll the flip rather than race it
                status, report, headers = await _poll_health(client, 503)
                assert status == 503
                assert report["healthy"] is False
                assert report["reasons"]
                assert int(headers["retry-after"]) >= 1

                # new work is shed with the same retry hint...
                status, body, headers = await client.submit(
                    "c", "population", _tiny_population(seed=99)
                )
                assert status == 503
                assert "unhealthy" in body["error"]
                assert headers["retry-after"] == "5"
                # ...but the dedup fast path stays open while shedding
                status, view, _ = await client.submit(
                    "c", "sweep", doomed_params
                )
                assert status == 200 and view["deduplicated"] is True

                # the in-flight job drains to completion despite shedding
                drained = await client.wait(slow["job_id"], timeout_s=60)
                assert drained["state"] == "done"
                assert drained["result"]["complete"] is True

                # its success ages the window to 1 failure in 2 = 0.5,
                # back under the threshold: admission resumes
                status, report, _ = await _poll_health(client, 200)
                assert status == 200 and report["healthy"] is True
                status, _, _ = await client.submit(
                    "c", "population", _tiny_population(seed=99)
                )
                assert status == 202

        run_async(scenario())


class TestFairShare:
    def test_single_job_client_is_not_starved_by_a_queue_hog(
        self, tmp_path, gateway_harness, run_async
    ):
        """With one execution slot, a client queueing three jobs ahead
        of another's single job still only gets one turn before the
        other client runs: round-robin, not FIFO-by-arrival."""
        config = _config(
            tmp_path, max_running=1, quota=ClientQuota(max_concurrent=8)
        )

        async def scenario():
            async with gateway_harness(config) as (_, client):
                hog_ids = []
                for tag in range(3):
                    status, body, _ = await client.submit(
                        "hog", "sweep", _sleepy(0.3, tag=tag)
                    )
                    assert status == 202
                    hog_ids.append(body["job_id"])
                status, body, _ = await client.submit(
                    "solo", "sweep", _sleepy(0.3, tag=99)
                )
                assert status == 202
                solo_id = body["job_id"]

                views = [
                    await client.wait(jid, timeout_s=60)
                    for jid in hog_ids + [solo_id]
                ]
                assert all(v["state"] == "done" for v in views)
                finished_at = {v["job_id"]: v["updated_at"] for v in views}
                # solo finished before the hog's *last* job: it did not
                # wait out the whole backlog
                assert finished_at[solo_id] < finished_at[hog_ids[-1]]

        run_async(scenario())
