"""The admit/shed decision: rolling windows, arming, and recovery."""

from __future__ import annotations

import pytest

from repro.serve import HealthMonitor, HealthThresholds


def _monitor(clock, **overrides) -> HealthMonitor:
    defaults = dict(max_error_rate=0.5, min_sample=4, window=8,
                    max_pool_rebuilds=5)
    defaults.update(overrides)
    return HealthMonitor(HealthThresholds(**defaults), clock=clock)


class TestDecision:
    def test_fresh_gateway_is_healthy(self, clock):
        assert _monitor(clock).healthy

    def test_error_rate_only_arms_after_min_sample(self, clock):
        monitor = _monitor(clock)
        monitor.job_finished(ok=False)
        monitor.job_finished(ok=False)
        assert monitor.healthy  # 2 failures < min_sample of 4: unarmed
        assert monitor.error_rate == 0.0
        monitor.job_finished(ok=False)
        monitor.job_finished(ok=False)
        assert not monitor.healthy
        assert monitor.error_rate == 1.0

    def test_window_ages_bad_outcomes_out(self, clock):
        monitor = _monitor(clock)
        for _ in range(4):
            monitor.job_finished(ok=False)
        assert not monitor.healthy
        for _ in range(8):  # a full window of successes displaces them
            monitor.job_finished(ok=True)
        assert monitor.healthy
        assert monitor.error_rate == 0.0

    def test_pool_rebuild_rate_trips_independently(self, clock):
        monitor = _monitor(clock)
        monitor.job_finished(ok=True, pool_rebuilds=6)
        assert not monitor.healthy
        reasons = monitor.unhealthy_reasons()
        assert len(reasons) == 1 and "pool rebuilds" in reasons[0]

    def test_thresholds_validate(self):
        with pytest.raises(ValueError):
            HealthThresholds(max_error_rate=0.0)
        with pytest.raises(ValueError):
            HealthThresholds(min_sample=5, window=4)


class TestReport:
    def test_report_is_the_obs_snapshot_plus_decision(self, clock):
        monitor = _monitor(clock)
        monitor.job_finished(ok=True, pool_rebuilds=1, retries=2)
        monitor.job_finished(ok=False)
        monitor.set_queue_depth(3)
        monitor.set_running(2)
        monitor.count("serve.admitted", 2)
        clock.advance(12.5)
        report = monitor.report()
        assert report["healthy"] is True
        assert report["uptime_s"] == pytest.approx(12.5)
        assert report["queue_depth"] == 3
        assert report["running_jobs"] == 2
        assert report["window_jobs"] == 2
        assert report["recent_pool_rebuilds"] == 1
        assert report["counters"]["serve.jobs_done"] == 1
        assert report["counters"]["serve.jobs_failed"] == 1
        assert report["counters"]["serve.pool_rebuilds"] == 1
        assert report["counters"]["serve.retry_attempts"] == 2
        assert report["counters"]["serve.admitted"] == 2

    def test_monitor_owns_a_real_metrics_registry(self, clock):
        from repro.obs import MetricsRegistry

        monitor = _monitor(clock)
        assert isinstance(monitor.registry, MetricsRegistry)
        monitor.count("serve.requests")
        assert monitor.registry.snapshot()["counters"]["serve.requests"] == 1
