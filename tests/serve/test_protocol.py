"""Wire-format bounds: every read is limited, every answer well-formed."""

from __future__ import annotations

import json

import pytest

import asyncio

from repro.serve.protocol import (
    MAX_BODY_BYTES,
    MAX_REQUEST_LINE_BYTES,
    ProtocolError,
    read_request,
    write_response,
)


def _parse(raw: bytes):
    async def _go():
        # StreamReader wants a running loop; build it inside the coroutine
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(_go())


class _SinkWriter:
    """Just enough StreamWriter for write_response."""

    def __init__(self) -> None:
        self.chunks: list[bytes] = []

    def write(self, data: bytes) -> None:
        self.chunks.append(data)

    async def drain(self) -> None:
        pass

    @property
    def raw(self) -> bytes:
        return b"".join(self.chunks)


class TestReadRequest:
    def test_parses_method_path_headers_body(self):
        body = b'{"client": "a"}'
        raw = (
            b"POST /jobs HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = _parse(raw)
        assert request.method == "POST"
        assert request.path == "/jobs"
        assert request.headers["content-type"] == "application/json"
        assert request.json() == {"client": "a"}

    def test_clean_eof_is_none_not_error(self):
        assert _parse(b"") is None

    def test_bare_lf_lines_accepted(self):
        request = _parse(b"GET /healthz HTTP/1.1\nhost: x\n\n")
        assert request.path == "/healthz"

    @pytest.mark.parametrize(
        "raw",
        [
            b"GARBAGE\r\n\r\n",
            b"GET /path\r\n\r\n",  # no version
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: -5\r\n\r\n",
        ],
        ids=["no-parts", "no-version", "bad-header", "bad-length", "neg-length"],
    )
    def test_malformed_input_is_400(self, raw):
        with pytest.raises(ProtocolError) as err:
            _parse(raw)
        assert err.value.status == 400

    def test_oversize_request_line_is_413(self):
        raw = b"GET /" + b"x" * MAX_REQUEST_LINE_BYTES + b" HTTP/1.1\r\n\r\n"
        with pytest.raises(ProtocolError) as err:
            _parse(raw)
        assert err.value.status == 413

    def test_oversize_declared_body_is_413_before_reading_it(self):
        raw = (
            b"POST /jobs HTTP/1.1\r\n"
            + f"content-length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        with pytest.raises(ProtocolError) as err:
            _parse(raw)
        assert err.value.status == 413

    def test_truncated_body_is_400(self):
        raw = b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort"
        with pytest.raises(ProtocolError) as err:
            _parse(raw)
        assert err.value.status == 400

    def test_non_json_body_raises_on_decode_only(self):
        raw = b"POST /x HTTP/1.1\r\ncontent-length: 3\r\n\r\nxyz"
        request = _parse(raw)
        with pytest.raises(ProtocolError):
            request.json()


class TestWriteResponse:
    def _render(self, *args, **kwargs) -> bytes:
        sink = _SinkWriter()
        asyncio.run(write_response(sink, *args, **kwargs))
        return sink.raw

    def test_status_line_headers_and_json_body(self):
        raw = self._render(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"connection: close" in head
        assert json.loads(body) == {"ok": True}
        length = [
            line for line in head.split(b"\r\n")
            if line.startswith(b"content-length")
        ]
        assert length == [f"content-length: {len(body)}".encode()]

    def test_retry_after_header_passes_through(self):
        raw = self._render(429, {"error": "slow down"}, {"retry-after": "3"})
        assert b"HTTP/1.1 429 Too Many Requests" in raw
        assert b"retry-after: 3" in raw

    def test_numpy_scalars_coerce(self):
        import numpy as np

        raw = self._render(200, {"p99": np.float64(1.5)})
        assert json.loads(raw.partition(b"\r\n\r\n")[2]) == {"p99": 1.5}
