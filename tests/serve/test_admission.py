"""Admission arithmetic: token buckets and quota windows, fake-clocked.

Every reject must come with an *exact* answer to "when should I come
back?" -- these tests pin that arithmetic down to equality, which is
only possible because both components take an injected clock.
"""

from __future__ import annotations

import pytest

from repro.serve import ClientQuota, QuotaManager, RateLimiter, TokenBucket


class TestTokenBucket:
    def test_burst_then_exact_retry_after(self, clock):
        bucket = TokenBucket(rate_per_s=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire()[0] for _ in range(3)] == [True] * 3
        ok, retry_after = bucket.try_acquire()
        assert not ok
        assert retry_after == pytest.approx(0.5)  # 1 token / 2 per second

    def test_refill_is_continuous_and_capped(self, clock):
        bucket = TokenBucket(rate_per_s=4.0, burst=2.0, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        clock.advance(0.25)  # one token back
        assert bucket.try_acquire()[0]
        clock.advance(100.0)  # refill caps at burst, not rate * elapsed
        assert bucket.tokens == pytest.approx(2.0)

    def test_reproducible_given_same_request_times(self):
        def drive():
            # local hand-advanced clock: the test tree is not a package,
            # so the conftest FakeClock cannot be imported, only injected
            now = [1000.0]
            bucket = TokenBucket(rate_per_s=1.5, burst=2.0, clock=lambda: now[0])
            outcomes = []
            for _ in range(6):
                outcomes.append(bucket.try_acquire())
                now[0] += 0.21
            return outcomes

        assert drive() == drive()

    def test_rejects_bad_shape(self, clock):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=2.0, clock=clock)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0.5, clock=clock)


class TestRateLimiter:
    def test_clients_do_not_share_buckets(self, clock):
        limiter = RateLimiter(rate_per_s=1.0, burst=1.0, clock=clock)
        assert limiter.try_acquire("a")[0]
        assert not limiter.try_acquire("a")[0]
        assert limiter.try_acquire("b")[0]  # b's bucket is untouched
        assert len(limiter) == 2


class TestQuotaManager:
    def _manager(self, clock, **quota) -> QuotaManager:
        defaults = dict(max_concurrent=2, max_units_per_window=100, window_s=60.0)
        defaults.update(quota)
        return QuotaManager(ClientQuota(**defaults), clock=clock)

    def test_concurrency_cap_and_release(self, clock):
        quotas = self._manager(clock)
        assert quotas.admit("a", 10).ok
        assert quotas.admit("a", 10).ok
        denied = quotas.admit("a", 10)
        assert not denied.ok
        assert denied.retry_after_s == QuotaManager.CONCURRENCY_RETRY_HINT_S
        quotas.release("a")
        assert quotas.admit("a", 10).ok

    def test_window_budget_with_exact_retry_at(self, clock):
        quotas = self._manager(clock, max_concurrent=10)
        assert quotas.admit("a", 60).ok
        clock.advance(10.0)
        assert quotas.admit("a", 30).ok
        denied = quotas.admit("a", 30)  # 90 + 30 > 100
        assert not denied.ok
        # the first entry (60 units, admitted at t0) frees enough; it
        # ages out of the 60s window exactly 50s from "now"
        assert denied.retry_after_s == pytest.approx(50.0)
        clock.advance(50.0)
        assert quotas.admit("a", 30).ok

    def test_oversize_job_rejected_without_retry(self, clock):
        quotas = self._manager(clock)
        denied = quotas.admit("a", 101)
        assert not denied.ok
        assert denied.retry_after_s == 0.0
        assert "exceeds the per-window budget" in denied.reason

    def test_release_never_refunds_window_units(self, clock):
        quotas = self._manager(clock, max_concurrent=10)
        assert quotas.admit("a", 100).ok
        quotas.release("a")
        assert not quotas.admit("a", 1).ok  # window still charged

    def test_per_client_overrides(self, clock):
        quotas = QuotaManager(
            ClientQuota(max_concurrent=1),
            overrides={"vip": ClientQuota(max_concurrent=3)},
            clock=clock,
        )
        assert quotas.admit("vip", 1).ok
        assert quotas.admit("vip", 1).ok
        assert quotas.admit("pleb", 1).ok
        assert not quotas.admit("pleb", 1).ok

    def test_clients_are_isolated(self, clock):
        quotas = self._manager(clock, max_concurrent=10)
        assert quotas.admit("a", 100).ok
        assert quotas.admit("b", 100).ok  # a's spend is not b's problem
