"""FTL-fidelity jobs through the gateway's validation + execution core.

The gateway exposes the page-level fleet bridge two ways: a
``population`` job with ``fidelity: "ftl"`` (a full sharded fleet) and
a ``sweep`` job naming the registered ``ftl_population`` point.  Both
must validate strictly off the wire and produce results identical to
driving the underlying engines directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import FleetPlan, run_fleet
from repro.serve import JobRecord, JobSpec, execute_job


def _population_spec(**overrides) -> JobSpec:
    params = {"devices": 6, "days": 20, "seed": 7, "shard_size": 3,
              "chunk": 3, "fidelity": "ftl"}
    params.update(overrides)
    return JobSpec.from_wire(
        {"client": "t", "kind": "population", "params": params}
    )


class TestValidation:
    def test_fidelity_key_only_when_non_default(self):
        assert _population_spec().params["fidelity"] == "ftl"
        epoch = _population_spec(fidelity="epoch")
        assert "fidelity" not in epoch.params
        # epoch job ids are unchanged by the field existing at all
        omitted = JobSpec.from_wire(
            {"client": "t", "kind": "population",
             "params": {"devices": 6, "days": 20, "seed": 7,
                        "shard_size": 3, "chunk": 3}}
        )
        assert epoch.job_id() == omitted.job_id()
        assert _population_spec().job_id() != omitted.job_id()

    def test_unknown_fidelity_is_a_client_error(self):
        with pytest.raises(ValueError, match="fidelity"):
            _population_spec(fidelity="quantum")

    def test_faults_cannot_ride_an_ftl_job(self):
        with pytest.raises(ValueError, match="epoch"):
            _population_spec(faults={"flaky": 0.5})

    def test_ftl_population_sweep_fn_is_registered(self):
        spec = JobSpec.from_wire(
            {"client": "t", "kind": "sweep",
             "params": {"fn": "ftl_population",
                        "grid": [{"mixes": ["light"],
                                  "workload_seeds": [1000],
                                  "capacity_gb": 64.0, "days": 5}]}}
        )
        assert spec.params["fn"] == "ftl_population"


class TestExecution:
    def test_ftl_population_job_end_to_end(self, tmp_path):
        """Gateway answer == driving the fleet engine directly."""
        record = JobRecord.fresh(_population_spec())
        seen = []
        result = execute_job(
            record, cache_dir=tmp_path / "cache", jobs=2,
            on_progress=seen.append,
        )
        assert result["complete"] is True
        assert result["devices"] == 6
        assert result["errors"] == []
        assert seen[-1]["devices_done"] == 6

        direct = run_fleet(
            FleetPlan(n_devices=6, days=20, capacity_gb=64.0, seed=7,
                      shard_size=3, chunk=3, fidelity="ftl")
        )
        stats = direct.summary()
        for quantile in ("median", "p90", "p99", "max"):
            assert result[quantile] == stats[quantile]

    def test_ftl_sweep_job_end_to_end(self, tmp_path):
        from repro.runner.points import ftl_population_point

        grid = [
            {"mixes": ["light", "heavy"], "workload_seeds": [1000, 1001],
             "capacity_gb": 64.0, "days": 10},
            {"mixes": ["typical"], "workload_seeds": [1002],
             "capacity_gb": 64.0, "days": 10},
        ]
        spec = JobSpec.from_wire(
            {"client": "t", "kind": "sweep",
             "params": {"fn": "ftl_population", "grid": grid,
                        "base_seed": 3}}
        )
        result = execute_job(
            JobRecord.fresh(spec), cache_dir=tmp_path / "cache", jobs=1
        )
        assert result["complete"] is True
        assert result["errors"] == []
        values = result["values"]
        assert values[0] == ftl_population_point(grid[0], 0)
        assert values[1] == ftl_population_point(grid[1], 0)
