"""Acceptance: SIGKILL the gateway mid-job; a restart must converge.

The gateway process is killed without warning while a population job is
part-way through its shards.  A fresh gateway pointed at the same state
directory has to (a) notice the interrupted job in the journal, (b)
requeue it, and (c) finish it -- resuming from the shard cache rather
than recomputing -- to the *same* wear summary an uninterrupted run
produces.  That is the whole durability story in one test.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import GatewayClient, JobRecord, JobSpec, execute_job

_SRC = Path(__file__).resolve().parents[2] / "src"

# 16 shards of 6 devices: ~0.35s per shard, so the job is reliably
# still in flight when the kill lands after the first shard completes
_POPULATION = {"devices": 96, "days": 365, "seed": 17, "shard_size": 6}


def _spawn_gateway(state_dir: Path, port_file: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", str(state_dir),
            "--port", "0",
            "--port-file", str(port_file),
            "--max-running", "1",
            "--job-workers", "2",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _wait_for_port(port_file: Path, proc: subprocess.Popen,
                   timeout_s: float = 30.0) -> int:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if port_file.exists():
            return int(port_file.read_text().strip())
        if proc.poll() is not None:
            raise RuntimeError(
                f"gateway exited during startup:\n{proc.stdout.read()}"
            )
        time.sleep(0.05)
    raise TimeoutError("gateway never wrote its port file")


class TestRestartConvergence:
    def test_sigkill_mid_job_then_restart_resumes_and_converges(
        self, tmp_path
    ):
        state_dir = tmp_path / "state"
        first = _spawn_gateway(state_dir, tmp_path / "port-1")
        job_id = None
        try:
            port = _wait_for_port(tmp_path / "port-1", first)

            async def submit_and_wait_for_progress() -> tuple[str, dict]:
                client = GatewayClient("127.0.0.1", port, timeout_s=30.0)
                status, body, _ = await client.submit(
                    "restart-test", "population", _POPULATION
                )
                assert status == 202
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    _, view, _ = await client.job(body["job_id"])
                    progress = view.get("progress") or {}
                    if progress.get("shards_done", 0) >= 1:
                        return body["job_id"], view
                    await asyncio.sleep(0.05)
                raise TimeoutError("job never reported shard progress")

            job_id, view = asyncio.run(submit_and_wait_for_progress())
            # the kill must land mid-job or the test proves nothing
            assert view["state"] == "running"
            assert view["progress"]["shards_done"] < view["progress"]["shards_total"]

            first.send_signal(signal.SIGKILL)
            first.wait(timeout=10)
        finally:
            if first.poll() is None:
                first.kill()
                first.wait(timeout=10)

        second = _spawn_gateway(state_dir, tmp_path / "port-2")
        try:
            port = _wait_for_port(tmp_path / "port-2", second)

            async def wait_for_result() -> dict:
                client = GatewayClient("127.0.0.1", port, timeout_s=30.0)
                # the interrupted job was requeued from the journal: it is
                # already visible without resubmitting anything
                _, view, _ = await client.job(job_id)
                assert view["state"] in ("queued", "running", "done")
                return await client.wait(job_id, timeout_s=120.0)

            final = asyncio.run(wait_for_result())
        finally:
            if second.poll() is None:
                second.terminate()
                try:
                    second.wait(timeout=20)
                except subprocess.TimeoutExpired:
                    second.kill()
                    second.wait(timeout=10)

        assert final["state"] == "done"
        result = final["result"]
        assert result["complete"] is True
        assert result["devices"] == _POPULATION["devices"]
        # resumed, not recomputed: the shards finished before the kill
        # came back from the result cache
        assert result["cached_shards"] >= 1

        # an uninterrupted run from a cold cache lands on the same summary
        spec = JobSpec.from_wire(
            {"client": "restart-test", "kind": "population",
             "params": dict(_POPULATION)}
        )
        assert spec.job_id() == job_id
        expected = execute_job(
            JobRecord.fresh(spec), cache_dir=tmp_path / "cold-cache", jobs=2
        )
        for stat in ("median", "p90", "p99", "max", "mean"):
            assert result[stat] == pytest.approx(expected[stat]), stat
        assert result["devices"] == expected["devices"]
