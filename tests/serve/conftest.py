"""Shared helpers for the serve-gateway tests.

The suite-wide wall-clock clamp (tests/conftest.py) already covers this
directory; what lives here is the fake clock the admission-control
arithmetic tests share and an in-process gateway harness for the
end-to-end tests -- a real asyncio server on an ephemeral port, driven
by the real :class:`~repro.serve.client.GatewayClient`, torn down
whether the test passes or not.
"""

from __future__ import annotations

import contextlib

import pytest

import asyncio


class FakeClock:
    """A hand-advanced monotonic clock for deterministic admission math."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@contextlib.asynccontextmanager
async def running_gateway(config):
    """Start a gateway, yield (gateway, client), always stop it."""
    from repro.serve import Gateway, GatewayClient

    gateway = Gateway(config)
    host, port = await gateway.start()
    try:
        yield gateway, GatewayClient(host, port, timeout_s=30.0)
    finally:
        await gateway.stop(cancel_running=True)


@pytest.fixture
def gateway_harness():
    """The context manager itself; tests compose it inside asyncio.run."""
    return running_gateway


@pytest.fixture
def run_async():
    """Run one coroutine to completion on a fresh event loop."""

    def _run(coro):
        return asyncio.run(coro)

    return _run
