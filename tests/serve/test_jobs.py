"""Job specs, the crash journal, and the blocking execution core."""

from __future__ import annotations

import json

import pytest

from repro.serve import (
    JobRecord,
    JobSpec,
    JobStore,
    execute_job,
    spec_units,
)


def _population_spec(**overrides) -> JobSpec:
    params = {"devices": 20, "days": 30, "seed": 7, "shard_size": 10}
    params.update(overrides)
    return JobSpec.from_wire(
        {"client": "t", "kind": "population", "params": params}
    )


def _sweep_spec(grid, fn="flaky", client="t") -> JobSpec:
    return JobSpec.from_wire(
        {
            "client": client,
            "kind": "sweep",
            "params": {"fn": fn, "grid": grid, "base_seed": 3},
        }
    )


class TestJobSpec:
    def test_identity_is_stable_and_param_sensitive(self):
        a, b = _population_spec(), _population_spec()
        assert a.job_id() == b.job_id()
        assert a.job_id() != _population_spec(devices=21).job_id()
        # a different client is a different job (quota isolation)
        other = JobSpec.from_wire(
            {"client": "u", "kind": "population", "params": a.params}
        )
        assert other.job_id() != a.job_id()

    def test_units_charge_devices_or_points(self):
        assert spec_units(_population_spec(devices=500, shard_size=50)) == 500
        assert spec_units(_sweep_spec([{"index": i} for i in range(3)])) == 3

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {"kind": "population", "params": {}},  # no client
            {"client": "", "kind": "population", "params": {"devices": 1}},
            {"client": "c", "kind": "teapot", "params": {}},
            {"client": "c", "kind": "population", "params": {"devices": 0}},
            {"client": "c", "kind": "population",
             "params": {"devices": 10**9}},
            {"client": "c", "kind": "sweep",
             "params": {"fn": "os.system", "grid": [{}]}},
            {"client": "c", "kind": "sweep", "params": {"fn": "flaky",
                                                        "grid": []}},
        ],
        ids=["non-dict", "no-client", "empty-client", "bad-kind",
             "zero-devices", "absurd-devices", "unregistered-fn",
             "empty-grid"],
    )
    def test_invalid_submissions_rejected(self, payload):
        with pytest.raises(ValueError):
            JobSpec.from_wire(payload)

    def test_unregistered_code_never_rides_the_wire(self):
        """The registry is the whole attack surface: a spec names a
        function, it can never carry one."""
        from repro.serve import SWEEP_POINT_FNS

        assert set(SWEEP_POINT_FNS) == {
            "lifetime", "population_batch", "ftl_population",
            "flaky", "crash", "sleepy",
        }
        for target in SWEEP_POINT_FNS.values():
            assert target.startswith("repro.runner.")


class TestJobStore:
    def test_save_load_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        record = JobRecord.fresh(_population_spec())
        record.state = "done"
        record.result = {"devices": 20}
        store.save(record)
        loaded = store.load(record.job_id)
        assert loaded.state == "done"
        assert loaded.result == {"devices": 20}
        assert loaded.spec == record.spec

    def test_corrupt_journal_is_skipped_and_counted_never_fatal(self, tmp_path):
        store = JobStore(tmp_path)
        good = JobRecord.fresh(_population_spec())
        store.save(good)
        (tmp_path / "jdeadbeefdeadbeef.json").write_text("{torn")
        (tmp_path / "jfeedfacefeedface.json").write_text(
            json.dumps({"schema": "repro.serve.job/v1", "state": "exploded"})
        )
        records = store.load_all()
        assert [r.job_id for r in records] == [good.job_id]
        assert store.corrupt_skipped == 2

    def test_recover_requeues_only_interrupted_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        states = {}
        for i, state in enumerate(("queued", "running", "done", "failed")):
            record = JobRecord.fresh(_population_spec(seed=100 + i))
            record.state = state
            record.progress = {"shards_done": 1}
            store.save(record)
            states[record.job_id] = state
        recovered = store.recover()
        assert {r.job_id for r in recovered} == {
            jid for jid, s in states.items() if s in ("queued", "running")
        }
        for record in store.load_all():
            expected = states[record.job_id]
            if expected in ("queued", "running"):
                assert record.state == "queued"
                assert record.progress == {}  # cache, not this, resumes work
            else:
                assert record.state == expected

    def test_malformed_job_id_never_escapes_the_root(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(ValueError):
            store.load("../../etc/passwd")


class TestExecuteJob:
    def test_population_job_produces_complete_summary(self, tmp_path):
        record = JobRecord.fresh(_population_spec())
        seen = []
        result = execute_job(
            record, cache_dir=tmp_path / "cache", jobs=2,
            on_progress=seen.append,
        )
        assert result["complete"] is True
        assert result["devices"] == 20
        assert result["errors"] == []
        assert result["median"] is not None
        assert seen[-1]["shards_done"] == seen[-1]["shards_total"] == 2
        assert seen[-1]["devices_done"] == 20

    def test_identical_specs_share_the_result_cache(self, tmp_path):
        cache = tmp_path / "cache"
        first = execute_job(
            JobRecord.fresh(_population_spec()), cache_dir=cache, jobs=2
        )
        second = execute_job(
            JobRecord.fresh(_population_spec()), cache_dir=cache, jobs=2
        )
        assert first["cached_shards"] == 0
        assert second["cached_shards"] == 2  # byte-identical cache keys
        for stat in ("median", "p90", "p99", "max", "mean"):
            assert first[stat] == second[stat]

    def test_worker_crash_mid_job_completes_via_retry(self, tmp_path):
        """A worker process dying (os._exit, as an OOM kill would) costs
        a pool rebuild and a retry, never the job."""
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        grid = [{"index": 0, "crash_times": 1, "scratch": str(scratch)},
                {"index": 1}, {"index": 2}]
        record = JobRecord.fresh(_sweep_spec(grid, fn="crash"))
        result = execute_job(
            record, cache_dir=tmp_path / "cache", jobs=2, retries=2
        )
        assert result["complete"] is True
        assert result["failed"] == 0
        assert result["pool_rebuilds"] >= 1
        assert [v["index"] for v in result["values"]] == [0, 1, 2]

    def test_flaky_points_recover_with_correct_values(self, tmp_path):
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        grid = [{"index": i, "fail_times": 1 if i == 0 else 0,
                 "scratch": str(scratch)} for i in range(3)]
        record = JobRecord.fresh(_sweep_spec(grid, fn="flaky"))
        result = execute_job(
            record, cache_dir=tmp_path / "cache", jobs=2, retries=2
        )
        assert result["complete"] is True
        assert result["retry_attempts"] >= 1
        assert result["values"][0]["attempts"] == 2

    def test_cancellation_raises_sweep_cancelled(self, tmp_path):
        from repro.runner import SweepCancelled

        record = JobRecord.fresh(_population_spec(devices=40, days=365))
        with pytest.raises(SweepCancelled):
            execute_job(
                record, cache_dir=tmp_path / "cache", jobs=2,
                should_stop=lambda: True,
            )
