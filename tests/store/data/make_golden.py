"""Builds the golden store fixtures that pin ``repro.store/v1``.

Run from the repo root to (re)generate::

    PYTHONPATH=src python tests/store/data/make_golden.py

The fixtures are committed; ``test_golden.py`` rebuilds them into a
temp dir and asserts byte identity with the committed files.  If that
test ever fails, the on-disk format changed: either revert the change,
or -- deliberately -- bump :data:`repro.store.format.FORMAT` to v2,
regenerate these files, and keep a v1 reader.  Silent drift is the one
outcome this fixture exists to make impossible.

Everything here must be deterministic: fixed bit patterns, fixed key
order, fixed block geometry, no timestamps.
"""

from __future__ import annotations

import struct
import sys
from pathlib import Path

import numpy as np

#: fixture file per codec; "none" pins the framing/TOC/index bytes
#: independent of any compression library, "zlib" additionally pins the
#: default codec's output
CODECS = ("none", "zlib")


def fixture_arrays() -> dict[str, dict[str, np.ndarray]]:
    """The golden content: every dtype family and edge bit pattern."""
    edge_bits = struct.pack(
        "<6d", float("inf"), float("-inf"), 0.0, -0.0, 1.5, -1.5
    ) + struct.pack("<2Q", 0x7FF8_0000_0000_0001, 0xFFF8_DEAD_BEEF_0000)
    return {
        "point-a": {
            "wear": np.frombuffer(edge_bits, dtype="<f8"),
            "retired": np.arange(-4, 4, dtype="<i8"),
            "flags": np.array([True, False, True, True]),
        },
        "point-b": {
            "wear": (np.arange(48, dtype="<f4") / 7.0).astype("<f4"),
            "grid": np.arange(12, dtype="<u2").reshape(3, 4),
            "z": np.array([1 + 2j, -0.5j], dtype="<c16"),
        },
        "point-empty": {
            "nothing": np.array([], dtype="<f8"),
            "scalar": np.array(3.25, dtype="<f8"),
        },
    }


def build(path: Path, codec: str) -> Path:
    """Write one fixture store (append history incl. a supersede)."""
    from repro.store import ColumnStore

    if path.exists():
        path.unlink()
    store = ColumnStore(path, codec=codec, block_bytes=96)
    # a superseded first version of point-a stays in the file: the
    # fixture pins the raw append history, not just the live view
    store.put("point-a", {"wear": np.zeros(3, dtype="<f8")})
    for key, cols in fixture_arrays().items():
        store.put(key, cols)
    store.close()
    return path


def main() -> int:
    here = Path(__file__).resolve().parent
    for codec in CODECS:
        out = build(here / f"golden_v1_{codec}.rcs", codec)
        print(f"wrote {out} ({out.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
