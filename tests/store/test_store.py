"""ColumnStore behavior: append, supersede, recover, quarantine, compact.

The claims the result-cache integration and the crash matrix lean on,
each pinned on small stores:

* reads are bit-identical to what was written, flushed or pending;
* losing the footer/index costs nothing but a recovery scan;
* a torn tail is quarantined (append mode) or ignored (read mode),
  never interpreted;
* compaction output depends only on logical content -- append order,
  supersede history, and prior block layout all wash out.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.store import CODECS, ColumnStore, StoreError

ARRS = {
    "wear": np.linspace(0.0, 1.5, 17),
    "retired": np.arange(17, dtype=np.int64) % 5,
    "flags": np.array([True, False, True]),
}


def _assert_same(got: dict, want: dict) -> None:
    assert sorted(got) == sorted(want)
    for name, arr in want.items():
        assert got[name].dtype == arr.dtype
        assert got[name].shape == arr.shape
        assert got[name].tobytes() == arr.tobytes()


@pytest.fixture()
def path(tmp_path):
    return tmp_path / "cols.rcs"


class TestRoundTrip:
    def test_put_get_flushed(self, path):
        store = ColumnStore(path, block_bytes=1)
        store.put("k", ARRS)
        _assert_same(store.get("k"), ARRS)

    def test_put_get_pending(self, path):
        store = ColumnStore(path)  # default 1 MiB: nothing flushes
        store.put("k", ARRS)
        assert store.stats().pending_entries == len(ARRS)
        _assert_same(store.get("k"), ARRS)

    def test_reopen_after_checkpoint_is_clean(self, path):
        store = ColumnStore(path)
        store.put("k", ARRS)
        store.close()
        again = ColumnStore(path, mode="read")
        assert not again.recovered
        _assert_same(again.get("k"), ARRS)

    def test_reopen_without_checkpoint_recovers_from_blocks(self, path):
        store = ColumnStore(path, block_bytes=1)
        store.put("a", {"x": np.arange(5.0)})
        store.put("b", {"x": np.arange(9.0)})
        # no checkpoint: the file ends in block frames, no index/footer
        again = ColumnStore(path, mode="read")
        assert again.recovered
        assert again.keys() == ["a", "b"]
        assert again.get("b")["x"].tobytes() == np.arange(9.0).tobytes()

    def test_membership_and_listing(self, path):
        store = ColumnStore(path)
        store.put("k", ARRS)
        assert "k" in store and "missing" not in store
        assert store.keys() == ["k"]
        assert store.columns("k") == sorted(ARRS)
        assert store.columns("missing") is None
        assert store.get("missing") is None

    def test_column_subset_and_missing_column(self, path):
        store = ColumnStore(path)
        store.put("k", ARRS)
        assert list(store.get("k", columns=["wear"])) == ["wear"]
        with pytest.raises(StoreError) as exc:
            store.get("k", columns=["wear", "nope"])
        assert exc.value.reason == "missing-column"

    @pytest.mark.parametrize("codec", CODECS)
    def test_every_codec_round_trips(self, tmp_path, codec):
        store = ColumnStore(tmp_path / "c.rcs", codec=codec, block_bytes=1)
        store.put("k", ARRS)
        store.close()
        _assert_same(ColumnStore(tmp_path / "c.rcs", mode="read").get("k"), ARRS)

    def test_empty_arrays_round_trip(self, path):
        arrays = {"empty": np.array([], dtype=np.float32), "scalar": np.full((), 3.0)}
        store = ColumnStore(path, block_bytes=1)
        store.put("k", arrays)
        store.close()
        _assert_same(ColumnStore(path, mode="read").get("k"), arrays)


class TestSupersede:
    def test_latest_append_wins(self, path):
        store = ColumnStore(path, block_bytes=1)
        store.put("k", {"x": np.arange(3.0)})
        store.put("k", {"x": np.arange(4.0)})
        assert store.get("k")["x"].shape == (4,)
        store.close()
        assert ColumnStore(path, mode="read").get("k")["x"].shape == (4,)

    def test_scan_skips_superseded(self, path):
        store = ColumnStore(path, block_bytes=1)
        store.put("a", {"x": np.arange(3.0)})
        store.put("a", {"x": np.arange(5.0)})
        store.put("b", {"x": np.arange(2.0)})
        seen = [(key, arr.shape) for key, _, arr in store.scan()]
        assert seen == [("a", (5,)), ("b", (2,))]

    def test_column_values_concatenates_live_only(self, path):
        store = ColumnStore(path, block_bytes=1)
        store.put("a", {"x": np.array([1.0, 2.0])})
        store.put("a", {"x": np.array([3.0])})
        store.put("b", {"x": np.array([4.0, 5.0])})
        assert store.column_values("x").tolist() == [3.0, 4.0, 5.0]
        assert store.column_values("absent").tolist() == []


class TestDamage:
    def _store_with_two_keys(self, path) -> int:
        """Two flushed blocks, NO checkpoint: a writer died mid-append."""
        store = ColumnStore(path, block_bytes=1)
        store.put("a", {"x": np.arange(64.0)})
        good_end = path.stat().st_size
        store.put("b", {"x": np.arange(64.0) + 1})
        return good_end

    def test_torn_tail_is_quarantined_in_append_mode(self, path):
        good_end = self._store_with_two_keys(path)
        size = path.stat().st_size
        with open(path, "r+b") as fh:  # tear byte 4 of key b's frame
            fh.seek(good_end + 4)
            fh.write(b"\xff")
        store = ColumnStore(path, mode="append")
        assert store.recovered
        assert store.keys() == ["a"]
        assert store.tail_quarantined_bytes == size - good_end
        assert path.stat().st_size == good_end
        [quarantined] = list((path.parent / "corrupt").iterdir())
        assert quarantined.stat().st_size == size - good_end
        # the repaired store keeps working
        store.put("b", {"x": np.arange(3.0)})
        assert store.get("b")["x"].tolist() == [0.0, 1.0, 2.0]

    def test_read_mode_never_mutates(self, path):
        good_end = self._store_with_two_keys(path)
        with open(path, "r+b") as fh:
            fh.seek(good_end + 4)
            fh.write(b"\xff")
        before = path.read_bytes()
        store = ColumnStore(path, mode="read")
        assert store.keys() == ["a"]
        assert path.read_bytes() == before
        assert not (path.parent / "corrupt").exists()

    def test_read_mode_refuses_writes(self, path):
        ColumnStore(path, block_bytes=1).put("k", {"x": np.arange(2.0)})
        store = ColumnStore(path, mode="read")
        for attempt in (
            lambda: store.put("k", {"x": np.arange(2.0)}),
            store.checkpoint,
            store.compact,
        ):
            with pytest.raises(StoreError) as exc:
                attempt()
            assert exc.value.reason == "read-only"

    def test_read_mode_requires_existing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ColumnStore(tmp_path / "absent.rcs", mode="read")

    def test_damaged_block_is_a_store_error_not_wrong_bytes(self, path):
        store = ColumnStore(path, block_bytes=1)
        store.put("a", {"x": np.arange(64.0)})
        store.put("b", {"x": np.arange(64.0)})
        store.close()
        # flip one byte inside the FIRST block's payload: the index
        # still names it, but the frame CRC refuses to serve it
        target = store._blocks[0] + 20
        with open(path, "r+b") as fh:
            fh.seek(target)
            byte = fh.read(1)
            fh.seek(target)
            fh.write(bytes([byte[0] ^ 0xFF]))
        again = ColumnStore(path, mode="read")
        with pytest.raises(StoreError):
            again.get("a")
        assert again.corrupt_blocks == 1
        assert again.verify() != []

    def test_scan_skips_dead_damaged_blocks_raises_on_live(self, path):
        """A damaged block that only backs superseded entries is a
        tombstone: scans skip it.  The same damage backing a LIVE entry
        must raise -- a silently partial distribution is wrong data."""
        store = ColumnStore(path, block_bytes=1)
        store.put("k", {"x": np.arange(64.0)})
        first_block_end = path.stat().st_size
        store.put("k", {"x": np.arange(64.0) + 1})  # supersedes block 0
        store.put("other", {"x": np.arange(4.0)})
        store.close()
        with open(path, "r+b") as fh:
            fh.seek(store._blocks[0] + 20)
            fh.write(b"\xff\xff")
        assert first_block_end > store._blocks[0]
        again = ColumnStore(path, mode="read")
        got = {key: arr for key, _, arr in again.scan()}
        assert got["k"].tolist() == (np.arange(64.0) + 1).tolist()
        assert again.column_values("x").size == 68
        # now damage the LIVE block too: loud failure, never omission
        with open(path, "r+b") as fh:
            fh.seek(store._blocks[1] + 20)
            fh.write(b"\xff\xff")
        live_damaged = ColumnStore(path, mode="read")
        with pytest.raises(StoreError):
            list(live_damaged.scan())

    def test_verify_clean_store_is_empty(self, path):
        store = ColumnStore(path, block_bytes=1)
        store.put("k", ARRS)
        store.close()
        assert store.verify() == []
        assert ColumnStore(path, mode="read").verify() == []

    def test_header_damage_recreates_in_append_quarantining_all(self, path):
        self._store_with_two_keys(path)
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.seek(1)
            fh.write(b"\x00")
        with pytest.raises(StoreError):
            ColumnStore(path, mode="read")  # read mode just refuses
        store = ColumnStore(path, mode="append")  # append mode repairs
        assert store.keys() == []
        assert store.tail_quarantined_bytes == size

    def test_format_mismatch_refused(self, path):
        # a file from some hypothetical v2 must be refused, not guessed
        from repro.store.format import TAG_HEADER, canon_json, frame

        path.write_bytes(
            frame(TAG_HEADER, canon_json({"format": "repro.store/v2", "codec": "zlib"}))
        )
        with pytest.raises(StoreError) as exc:
            ColumnStore(path, mode="read")
        assert exc.value.reason == "format-mismatch"


class TestCompact:
    def test_compact_drops_superseded_and_shrinks(self, path):
        store = ColumnStore(path, block_bytes=1)
        big = np.arange(4096.0)
        for _ in range(4):
            store.put("k", {"x": big})
        store.close()
        before = path.stat().st_size
        report = store.compact()
        assert report["before_bytes"] == before
        assert report["after_bytes"] == path.stat().st_size < before
        assert report["keys"] == 1 and report["dropped_entries"] == 0
        assert store.get("k")["x"].tobytes() == big.tobytes()

    def test_compact_bytes_independent_of_history(self, tmp_path):
        """Same logical content, three different histories, one file."""
        arrays = {f"k{i}": {"x": np.arange(32.0) * i, "y": np.arange(8, dtype=np.int64)}
                  for i in range(5)}

        def build(name, order, supersede):
            store = ColumnStore(tmp_path / name, block_bytes=256)
            if supersede:
                store.put("k0", {"x": np.zeros(99), "y": np.zeros(4, dtype=np.int64)})
            for key in order:
                store.put(key, arrays[key])
            store.close()
            store.compact()
            return (tmp_path / name).read_bytes()

        keys = sorted(arrays)
        a = build("a.rcs", keys, supersede=False)
        b = build("b.rcs", list(reversed(keys)), supersede=True)
        assert a == b

    def test_compact_is_idempotent_at_small_blocks(self, path):
        store = ColumnStore(path, block_bytes=64)
        for i in range(6):
            store.put(f"k{i}", {"x": np.arange(40.0) * i})
        store.close()
        store.compact()
        first = path.read_bytes()
        # a freshly-loaded store (index iteration order differs from an
        # append-built one) must still converge to the same bytes
        ColumnStore(path, mode="append", block_bytes=64).compact()
        assert path.read_bytes() == first

    def test_compact_can_switch_codec(self, path):
        store = ColumnStore(path, codec="none", block_bytes=1)
        store.put("k", {"x": np.zeros(4096)})
        store.close()
        store.compact(codec="zlib")
        assert store.codec == "zlib"
        again = ColumnStore(path, mode="read")
        assert again.codec == "zlib"
        assert again.get("k")["x"].tobytes() == np.zeros(4096).tobytes()

    def test_compact_drops_unreadable_entries(self, path):
        store = ColumnStore(path, block_bytes=1)
        store.put("a", {"x": np.arange(64.0)})
        good_end = path.stat().st_size
        store.put("b", {"x": np.arange(64.0)})
        store.close()
        with open(path, "r+b") as fh:  # damage key b's block in place
            fh.seek(good_end + 20)
            fh.write(b"\xff\xff")
        # reopen via the footer (index still names both); b is damaged
        again = ColumnStore(path, mode="append")
        report = again.compact()
        assert report["dropped_entries"] == 1
        assert again.keys() == ["a"]
        assert ColumnStore(path, mode="read").verify() == []


class TestValidation:
    def test_bad_mode(self, path):
        with pytest.raises(ValueError):
            ColumnStore(path, mode="rw")

    def test_bad_codec(self, path):
        with pytest.raises(StoreError):
            ColumnStore(path, codec="zstd")

    def test_bad_block_bytes(self, path):
        with pytest.raises(ValueError):
            ColumnStore(path, block_bytes=0)

    def test_bad_keys_and_columns(self, path):
        store = ColumnStore(path)
        with pytest.raises(StoreError):
            store.put("", {"x": np.arange(2.0)})
        with pytest.raises(StoreError):
            store.put("k", {})
        with pytest.raises(StoreError):
            store.put("k", {"": np.arange(2.0)})

    def test_failed_put_stages_nothing(self, path):
        store = ColumnStore(path)
        with pytest.raises(StoreError):
            store.put("k", {"good": np.arange(2.0), "bad": np.array(["s"])})
        assert "k" not in store
        assert store.stats().pending_entries == 0

    def test_stats_shape(self, path):
        store = ColumnStore(path, block_bytes=1)
        store.put("k", ARRS)
        store.close()
        stats = store.stats().to_dict()
        assert stats["keys"] == 1
        assert stats["columns"] == len(ARRS)
        assert stats["blocks"] == 1
        assert stats["clean"] and not stats["recovered"]
        assert stats["file_bytes"] == os.path.getsize(path)
        assert stats["live_bytes"] == sum(a.nbytes for a in ARRS.values())
