"""Format stability: the committed fixture IS the v1 spec, in bytes.

A persisted format must never drift silently -- an archive written
today has to open under every future build.  Three locks:

* rebuilding the fixture from source (``data/make_golden.py``) produces
  **byte-identical** files to the committed ones -- any writer change
  that moves a single byte trips here;
* the committed files *read back* to the exact expected arrays -- any
  reader change that reinterprets old bytes trips here;
* :data:`~repro.store.FORMAT` is pinned to the literal ``v1`` tag --
  bumping it is the one sanctioned way out of the first two locks
  (bump, regenerate fixtures, keep a v1 reader).
"""

from __future__ import annotations

import hashlib
import importlib.util
import sys
from pathlib import Path

import pytest

from repro.store import FORMAT, ColumnStore

DATA = Path(__file__).resolve().parent / "data"

#: belt on top of the rebuild comparison: the exact fixture digests
GOLDEN_SHA256 = {
    "none": "109dab9d0f1bab8cc6b9c9d8e22472fcf2610543ff6959043e6ac46b5b37ab83",
    "zlib": "a03e3c940e93b958305dd7c213a6336c27fd85453bfa76a5ab157a35b6bc5323",
}

BUMP_HINT = (
    "the on-disk store format changed. If that is intentional, bump "
    "repro.store.format.FORMAT explicitly (v1 -> v2), regenerate the "
    "fixtures with tests/store/data/make_golden.py, and keep a v1 "
    "reader; a silent byte-level change is never acceptable."
)


def _maker():
    spec = importlib.util.spec_from_file_location(
        "make_golden", DATA / "make_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("make_golden", module)
    spec.loader.exec_module(module)
    return module


def test_format_tag_is_pinned():
    assert FORMAT == "repro.store/v1", BUMP_HINT


@pytest.mark.parametrize("codec", ["none", "zlib"])
def test_rebuilt_fixture_is_byte_identical(tmp_path, codec):
    committed = (DATA / f"golden_v1_{codec}.rcs").read_bytes()
    rebuilt = _maker().build(tmp_path / "rebuilt.rcs", codec).read_bytes()
    assert rebuilt == committed, BUMP_HINT


@pytest.mark.parametrize("codec", ["none", "zlib"])
def test_committed_fixture_digest(codec):
    digest = hashlib.sha256((DATA / f"golden_v1_{codec}.rcs").read_bytes())
    assert digest.hexdigest() == GOLDEN_SHA256[codec], BUMP_HINT


@pytest.mark.parametrize("codec", ["none", "zlib"])
def test_committed_fixture_reads_back_exactly(codec):
    store = ColumnStore(DATA / f"golden_v1_{codec}.rcs", mode="read")
    assert not store.recovered  # the fixture ends in a clean checkpoint
    assert store.verify() == []
    expected = _maker().fixture_arrays()
    assert store.keys() == sorted(expected)
    for key, cols in expected.items():
        got = store.get(key)
        assert sorted(got) == sorted(cols)
        for name, arr in cols.items():
            assert got[name].dtype == arr.dtype, f"{key}/{name}"
            assert got[name].shape == arr.shape, f"{key}/{name}"
            assert got[name].tobytes() == arr.tobytes(), f"{key}/{name}"


def test_fixture_contains_a_superseded_entry():
    """The fixture pins supersede layout, not just a linear append log:
    the raw file carries more block frames than live keys need."""
    store = ColumnStore(DATA / "golden_v1_none.rcs", mode="read")
    live_columns = sum(len(store.columns(key)) for key in store.keys())
    toc_entries = sum(1 for _ in _all_toc_entries(store))
    assert toc_entries == live_columns + 1  # exactly one dead version


def _all_toc_entries(store):
    from repro.store.format import unpack_block_body

    for ordinal in range(len(store._blocks)):
        _, body = store._block_body(ordinal)
        toc, _ = unpack_block_body(body)
        yield from toc["entries"]
