"""The pinned v1 layout primitives: framing, footer, block bodies, arrays.

Everything here tests :mod:`repro.store.format` in isolation -- the
byte-level contracts the golden fixture and the property suite build
on.  The overarching rule, inherited from the framed-record layer: any
damage is *detected* (a :class:`StoreError` with a stable reason tag),
never interpreted.
"""

from __future__ import annotations

import io
import struct

import numpy as np
import pytest

from repro.runner.record import MAGIC
from repro.store.format import (
    CODECS,
    FOOTER_MAGIC,
    FOOTER_SIZE,
    FORMAT,
    StoreError,
    TAG_BLOCK,
    TAG_HEADER,
    TAG_INDEX,
    canon_json,
    compress,
    decompress,
    frame,
    pack_array,
    pack_block_body,
    pack_footer,
    read_frame,
    unpack_array,
    unpack_block_body,
    unpack_footer,
)


def _read(data: bytes, offset: int = 0):
    return read_frame(io.BytesIO(data), offset, len(data))


class TestPinnedConstants:
    """The format identity: changing any of these is a format bump."""

    def test_format_tag(self):
        assert FORMAT == "repro.store/v1"

    def test_codecs(self):
        assert CODECS == ("lzma", "none", "zlib")

    def test_tags_are_single_bytes(self):
        assert (TAG_HEADER, TAG_BLOCK, TAG_INDEX) == (b"H", b"B", b"I")

    def test_footer_shape(self):
        assert FOOTER_MAGIC == b"RCSF"
        assert FOOTER_SIZE == 16


class TestCanonJson:
    def test_sorted_and_compact(self):
        assert canon_json({"b": 1, "a": [1, 2]}) == b'{"a":[1,2],"b":1}'

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canon_json({"x": float("nan")})


class TestFraming:
    def test_round_trip_splits_tag(self):
        tag, payload, end = _read(frame(TAG_BLOCK, b"hello"))
        assert (tag, payload) == (TAG_BLOCK, b"hello")
        assert end == len(frame(TAG_BLOCK, b"hello"))

    def test_frame_uses_shared_magic(self):
        assert frame(TAG_HEADER, b"x")[:4] == MAGIC

    def test_every_single_byte_flip_is_detected(self):
        framed = frame(TAG_BLOCK, b"some payload bytes")
        for offset in range(len(framed)):
            damaged = bytearray(framed)
            damaged[offset] ^= 0x40
            with pytest.raises(StoreError):
                _read(bytes(damaged))

    def test_every_truncation_is_detected(self):
        framed = frame(TAG_INDEX, b"payload")
        for cut in range(len(framed)):
            with pytest.raises(StoreError) as exc:
                _read(framed[:cut])
            assert exc.value.reason in ("truncated-header", "length-mismatch")

    def test_tagless_frame_is_rejected(self):
        from repro.runner.record import frame_record

        with pytest.raises(StoreError) as exc:
            _read(frame_record(b""))
        assert exc.value.reason == "empty-frame"

    def test_frame_past_eof_is_length_mismatch(self):
        framed = frame(TAG_BLOCK, b"abc")
        with pytest.raises(StoreError) as exc:
            read_frame(io.BytesIO(framed), 0, len(framed) - 1)
        assert exc.value.reason == "length-mismatch"


class TestFooter:
    def test_round_trip(self):
        assert unpack_footer(pack_footer(12345)) == 12345

    def test_size(self):
        assert len(pack_footer(0)) == FOOTER_SIZE

    def test_wrong_length(self):
        with pytest.raises(StoreError) as exc:
            unpack_footer(b"short")
        assert exc.value.reason == "bad-footer"

    def test_every_single_byte_flip_is_detected(self):
        footer = pack_footer(999)
        for offset in range(FOOTER_SIZE):
            damaged = bytearray(footer)
            damaged[offset] ^= 0x01
            with pytest.raises(StoreError) as exc:
                unpack_footer(bytes(damaged))
            assert exc.value.reason == "bad-footer"


class TestCodecs:
    @pytest.mark.parametrize("codec", CODECS)
    def test_round_trip(self, codec):
        data = b"the same bytes back" * 37
        assert decompress(codec, compress(codec, data)) == data

    def test_unknown_codec(self):
        for fn in (compress, decompress):
            with pytest.raises(StoreError) as exc:
                fn("zstd", b"x")
            assert exc.value.reason == "unknown-codec"

    @pytest.mark.parametrize("codec", ["zlib", "lzma"])
    def test_garbage_is_decompress_failed(self, codec):
        with pytest.raises(StoreError) as exc:
            decompress(codec, b"\x00\x01not compressed")
        assert exc.value.reason == "decompress-failed"


class TestBlockBody:
    def test_round_trip(self):
        toc = {"entries": [{"key": "k", "column": "c", "offset": 0}]}
        body = pack_block_body(toc, b"columnbytes")
        parsed, data_start = unpack_block_body(body)
        assert parsed == toc
        assert body[data_start:] == b"columnbytes"

    def test_short_body(self):
        with pytest.raises(StoreError) as exc:
            unpack_block_body(b"\x01")
        assert exc.value.reason == "bad-block"

    def test_toc_len_past_end(self):
        with pytest.raises(StoreError) as exc:
            unpack_block_body(struct.pack("<I", 999) + b"{}")
        assert exc.value.reason == "bad-block"

    def test_toc_not_json(self):
        with pytest.raises(StoreError) as exc:
            unpack_block_body(struct.pack("<I", 3) + b"%%%")
        assert exc.value.reason == "bad-block"

    def test_toc_without_entries(self):
        bad = canon_json({"no": "entries"})
        with pytest.raises(StoreError) as exc:
            unpack_block_body(struct.pack("<I", len(bad)) + bad)
        assert exc.value.reason == "bad-block"


class TestArrayPacking:
    def test_round_trip_preserves_bits(self):
        # NaN with a payload, -0.0, and infinities must come back with
        # the exact bit patterns they went in with
        raw = struct.pack(
            "<4d", float("-inf"), -0.0, float("inf"), 1.5
        ) + struct.pack("<Q", 0x7FF8_0000_DEAD_BEEF)
        arr = np.frombuffer(raw, dtype="<f8")
        data, dtype, shape = pack_array(arr)
        out = unpack_array(data, dtype, shape)
        assert out.tobytes() == arr.tobytes()
        assert out.dtype == np.dtype("<f8")

    def test_big_endian_is_canonicalized_not_rounded(self):
        arr = np.array([1.0, float("inf"), -0.0], dtype=">f8")
        data, dtype, shape = pack_array(arr)
        assert dtype == "<f8"
        out = unpack_array(data, dtype, shape)
        assert out.tobytes() == arr.byteswap().tobytes()

    def test_fortran_order_becomes_c_order(self):
        arr = np.asfortranarray(np.arange(12, dtype=np.int32).reshape(3, 4))
        data, dtype, shape = pack_array(arr)
        out = unpack_array(data, dtype, shape)
        assert np.array_equal(out, arr)
        assert out.flags["C_CONTIGUOUS"]

    @pytest.mark.parametrize("shape", [(), (0,), (3, 0, 2)])
    def test_degenerate_shapes(self, shape):
        arr = np.zeros(shape, dtype=np.float32)
        data, dtype, out_shape = pack_array(arr)
        out = unpack_array(data, dtype, out_shape)
        assert out.shape == shape and out.dtype == np.float32

    @pytest.mark.parametrize(
        "arr",
        [
            np.array(["a", "b"]),
            np.array([object()]),
            np.array(["2026-08-07"], dtype="datetime64[D]"),
            np.zeros(2, dtype=[("a", "i4"), ("b", "f8")]),
        ],
        ids=["str", "object", "datetime", "structured"],
    )
    def test_unstorable_dtypes_rejected(self, arr):
        with pytest.raises(StoreError) as exc:
            pack_array(arr)
        assert exc.value.reason == "unsupported-dtype"

    def test_non_array_rejected(self):
        with pytest.raises(StoreError) as exc:
            pack_array([1, 2, 3])
        assert exc.value.reason == "not-an-array"

    def test_byte_count_mismatch_detected(self):
        with pytest.raises(StoreError) as exc:
            unpack_array(b"\x00" * 7, "<f8", (1,))
        assert exc.value.reason == "bad-column"

    def test_unpack_rejects_unstorable_dtype(self):
        with pytest.raises(StoreError) as exc:
            unpack_array(b"", "O", (0,))
        assert exc.value.reason == "unsupported-dtype"

    def test_unpacked_array_is_writable_copy(self):
        arr = np.arange(4, dtype=np.int64)
        data, dtype, shape = pack_array(arr)
        out = unpack_array(data, dtype, shape)
        out[0] = 99  # would raise on a read-only frombuffer view
        assert arr[0] == 0
