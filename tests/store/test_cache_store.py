"""ResultCache x ColumnStore: arrays split out, everything else as was.

The integration contract: scalar points keep the exact legacy framed
pickle (bytes and all); array-carrying points persist a skeleton pickle
plus columns in the shared ``columns.rcs``; every store-side failure
degrades to a counted miss or a whole-value fallback -- the cache never
raises out of a degraded store and never serves approximate arrays.
"""

from __future__ import annotations

import errno
import pickle

import numpy as np
import pytest

from repro.runner.cache import ResultCache
from repro.runner.record import unframe_record
from repro.store import COLUMN_SENTINEL, ColumnStore

KEY = "a" * 64
VALUE = {
    "devices": 7,
    "obs": {
        "wear": np.array([0.1, np.nan, -0.0, 2.5]),
        "retired": np.arange(7, dtype=np.int64),
    },
    "note": "scalars ride along",
}


def _payload(cache: ResultCache, key: str) -> dict:
    return pickle.loads(unframe_record((cache.root / f"{key}.pkl").read_bytes()))


class TestScalarPathUnchanged:
    def test_exact_legacy_payload_and_no_store_file(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, {"plain": [1, 2.5, "x"]}, wall_s=0.25)
        assert _payload(cache, KEY) == {"value": {"plain": [1, 2.5, "x"]}, "wall_s": 0.25}
        assert not (tmp_path / ResultCache.STORE_FILE).exists()
        assert "store" not in cache.storage_report()

    def test_unstorable_arrays_stay_in_the_pickle(self, tmp_path):
        cache = ResultCache(tmp_path)
        value = {"names": np.array(["a", "b"])}
        cache.store(KEY, value, wall_s=0.0)
        assert not (tmp_path / ResultCache.STORE_FILE).exists()
        loaded = cache.load(KEY)
        assert np.array_equal(loaded.value["names"], value["names"])


class TestArrayPath:
    def test_skeleton_pickle_plus_store_columns(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, VALUE, wall_s=1.5)
        payload = _payload(cache, KEY)
        assert payload["columns"] == ["obs.retired", "obs.wear"]
        assert payload["value"]["obs"]["wear"] == {COLUMN_SENTINEL: "obs.wear"}
        assert payload["value"]["note"] == "scalars ride along"
        store = ColumnStore(tmp_path / ResultCache.STORE_FILE, mode="read")
        assert store.columns(KEY) == ["obs.retired", "obs.wear"]

    def test_fresh_cache_object_loads_bit_identical(self, tmp_path):
        writer = ResultCache(tmp_path)
        writer.store(KEY, VALUE, wall_s=1.5)
        writer.finalize()
        loaded = ResultCache(tmp_path).load(KEY)
        assert loaded.wall_s == 1.5
        assert loaded.value["devices"] == 7
        for name in ("wear", "retired"):
            got, want = loaded.value["obs"][name], VALUE["obs"][name]
            assert got.dtype == want.dtype and got.tobytes() == want.tobytes()

    def test_load_works_without_finalize_via_recovery(self, tmp_path):
        writer = ResultCache(tmp_path)
        writer.store(KEY, VALUE, wall_s=1.5)
        # no finalize: the store file ends in block frames, no footer
        reader = ResultCache(tmp_path)
        assert reader.load(KEY) is not None
        assert reader.storage_report()["store"]["recovered"] is True

    def test_finalize_makes_reopen_clean(self, tmp_path):
        writer = ResultCache(tmp_path)
        writer.store(KEY, VALUE, wall_s=1.5)
        writer.finalize()
        store = ColumnStore(tmp_path / ResultCache.STORE_FILE, mode="read")
        assert not store.recovered

    def test_columns_are_on_disk_before_the_skeleton_appears(self, tmp_path):
        """The persist-before-proceed invariant: the moment a skeleton
        pickle is visible, its columns are already CRC-framed on disk
        -- a crash right after ``store()`` returns loses nothing."""
        cache = ResultCache(tmp_path)
        cache.store(KEY, VALUE, wall_s=1.5)
        # do NOT finalize and do NOT reuse the writer's open store:
        # a brand new reader sees only what hit the disk
        assert ResultCache(tmp_path).load(KEY) is not None

    def test_storage_report_store_fields(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, VALUE, wall_s=1.5)
        report = cache.storage_report()["store"]
        assert report["codec"] == "zlib"
        assert report["keys"] == 1
        assert report["file_bytes"] > 0
        assert report["column_misses"] == 0 and report["column_errors"] == 0


class TestDegradation:
    def test_damaged_column_is_a_quarantined_miss_then_heals(self, tmp_path):
        writer = ResultCache(tmp_path)
        writer.store(KEY, VALUE, wall_s=1.5)
        writer.finalize()
        store_path = tmp_path / ResultCache.STORE_FILE
        data = bytearray(store_path.read_bytes())
        data[60] ^= 0xFF  # inside the first block frame
        store_path.write_bytes(bytes(data))
        reader = ResultCache(tmp_path)
        assert reader.load(KEY) is None  # miss, never wrong bytes
        assert reader.column_misses == 1
        assert reader.corrupt_quarantined == 1
        assert not (tmp_path / f"{KEY}.pkl").exists()  # skeleton quarantined
        # the sweep recomputes and re-stores; the cache self-heals
        reader.store(KEY, VALUE, wall_s=2.0)
        reader.finalize()
        healed = ResultCache(tmp_path).load(KEY)
        assert healed is not None
        assert healed.value["obs"]["wear"].tobytes() == VALUE["obs"]["wear"].tobytes()

    def test_missing_store_file_is_a_counted_miss(self, tmp_path):
        writer = ResultCache(tmp_path)
        writer.store(KEY, VALUE, wall_s=1.5)
        writer.finalize()
        (tmp_path / ResultCache.STORE_FILE).unlink()
        reader = ResultCache(tmp_path)
        assert reader.load(KEY) is None
        assert reader.column_misses == 1

    def test_enospc_on_column_append_latches_passthrough(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        monkeypatch.setattr(
            ColumnStore, "put",
            lambda self, key, arrays: (_ for _ in ()).throw(
                OSError(errno.ENOSPC, "disk full")
            ),
        )
        cache.store(KEY, VALUE, wall_s=1.5)
        assert cache.passthrough
        assert cache.stores_dropped == 1
        assert not (tmp_path / f"{KEY}.pkl").exists()  # dropped, like any ENOSPC
        # hits for other (scalar) keys would still be served; new stores drop
        cache.store("b" * 64, {"plain": 1}, wall_s=0.0)
        assert cache.stores_dropped == 2

    def test_other_column_errors_fall_back_to_whole_pickle(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        monkeypatch.setattr(
            ColumnStore, "put",
            lambda self, key, arrays: (_ for _ in ()).throw(
                OSError(errno.EIO, "io error")
            ),
        )
        cache.store(KEY, VALUE, wall_s=1.5)
        assert cache.column_errors == 1
        assert not cache.passthrough
        payload = _payload(cache, KEY)
        assert "columns" not in payload  # whole-value fallback
        monkeypatch.undo()
        loaded = ResultCache(tmp_path).load(KEY)
        assert loaded.value["obs"]["wear"].tobytes() == VALUE["obs"]["wear"].tobytes()

    def test_unopenable_store_degrades_to_whole_pickles(self, tmp_path):
        # a directory where the store file should be: open fails forever
        (tmp_path / ResultCache.STORE_FILE).mkdir()
        cache = ResultCache(tmp_path)
        cache.store(KEY, VALUE, wall_s=1.5)
        report = cache.storage_report()["store"]
        assert report["failed"] is True
        assert "columns" not in _payload(cache, KEY)
        assert cache.load(KEY).value["obs"]["wear"].tobytes() == \
            VALUE["obs"]["wear"].tobytes()


class TestStoreCodecChoice:
    @pytest.mark.parametrize("codec", ["none", "lzma"])
    def test_cache_store_codec_is_respected(self, tmp_path, codec):
        cache = ResultCache(tmp_path, store_codec=codec)
        cache.store(KEY, VALUE, wall_s=0.5)
        cache.finalize()
        store = ColumnStore(tmp_path / ResultCache.STORE_FILE, mode="read")
        assert store.codec == codec
        assert ResultCache(tmp_path).load(KEY) is not None
