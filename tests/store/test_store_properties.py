"""Property suite: the store's two absolute claims, under random fire.

1. **Round trip**: any storable array -- any numeric dtype, any byte
   pattern (NaN payloads, -0.0, infinities), any shape including empty
   -- written through a store and read back (flushed, checkpointed,
   reopened) is *bit-identical*.

2. **Damage**: flip any single byte of a store file and every read
   either still returns the exact original bytes or fails loudly
   (:class:`StoreError` / a quarantined miss).  A *different* array
   must never come back -- that is the line between "degraded" and
   "wrong", and the whole degrade-don't-die story stands on it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.store import ColumnStore, StoreError, join_value, split_value
from repro.store.format import pack_array, unpack_array

# every storable dtype family, both endiannesses where they exist
DTYPES = [
    "?", "i1", "u1", "<i2", ">i2", "<u4", ">u4", "<i8", ">i8", "<u8",
    "<f2", "<f4", ">f4", "<f8", ">f8", "<c8", "<c16", ">c16",
]

SHAPES = st.one_of(
    st.just(()),
    st.lists(st.integers(0, 5), min_size=1, max_size=3).map(tuple),
)


@st.composite
def arrays(draw):
    """An arbitrary storable array built from raw bytes, so every bit
    pattern a dtype can hold -- including the ones float comparison
    hides -- is on the table."""
    dtype = np.dtype(draw(st.sampled_from(DTYPES)))
    shape = draw(SHAPES)
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    raw = draw(st.binary(min_size=count * dtype.itemsize,
                         max_size=count * dtype.itemsize))
    return np.frombuffer(raw, dtype=dtype).reshape(shape)


def _expected_bytes(arr: np.ndarray) -> bytes:
    """What a round trip must return: the same bits, little-endian."""
    out = np.ascontiguousarray(arr)
    if out.dtype.byteorder == ">":
        out = out.byteswap()
    return out.tobytes()


KEYS = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=20
)
COLS = KEYS


class TestRoundTrip:
    @given(arr=arrays())
    @settings(max_examples=150, deadline=None)
    def test_pack_unpack_is_bit_identical(self, arr):
        data, dtype, shape = pack_array(arr)
        out = unpack_array(data, dtype, shape)
        assert out.shape == arr.shape
        assert out.tobytes() == _expected_bytes(arr)

    @given(
        points=st.dictionaries(
            KEYS, st.dictionaries(COLS, arrays(), min_size=1, max_size=3),
            min_size=1, max_size=4,
        ),
        codec=st.sampled_from(["none", "zlib"]),
        block_bytes=st.sampled_from([1, 200, 1 << 20]),
    )
    @settings(
        max_examples=60, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_store_round_trip_survives_reopen(
        self, tmp_path, points, codec, block_bytes
    ):
        path = tmp_path / "prop.rcs"
        if path.exists():
            path.unlink()
        store = ColumnStore(path, codec=codec, block_bytes=block_bytes)
        for key, cols in points.items():
            store.put(key, cols)
        # pending reads, flushed reads, and reopened reads all agree
        for phase_store in (store, self._reopened(store, path)):
            assert phase_store.keys() == sorted(points)
            for key, cols in points.items():
                got = phase_store.get(key)
                assert sorted(got) == sorted(cols)
                for name, arr in cols.items():
                    assert got[name].shape == arr.shape
                    assert got[name].tobytes() == _expected_bytes(arr)

    @staticmethod
    def _reopened(store, path):
        store.close()
        return ColumnStore(path, mode="read")

    @given(value=st.recursive(
        st.one_of(st.none(), st.integers(), st.text(max_size=5), arrays()),
        lambda children: st.one_of(
            st.lists(children, max_size=3),
            st.dictionaries(st.text(max_size=5), children, max_size=3),
        ),
        max_leaves=8,
    ))
    @settings(max_examples=100, deadline=None)
    def test_split_join_is_identity(self, value):
        skeleton, columns = split_value(value)
        joined = join_value(skeleton, columns) if columns else skeleton
        assert _equal(joined, value)


def _equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
            and a.dtype == b.dtype and a.shape == b.shape
            and a.tobytes() == b.tobytes()
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_equal(a[k], b[k]) for k in a)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(_equal(x, y) for x, y in zip(a, b))
    return type(a) is type(b) and a == b


# -- single-byte damage ---------------------------------------------------------

#: (key -> column -> canonical bytes) of the reference store, plus the
#: clean file bytes; built once, damaged many times
@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    path = tmp_path_factory.mktemp("damage") / "ref.rcs"
    rng = np.random.default_rng(20260807)
    points = {
        f"key-{i:02d}": {
            "wear": rng.random(24),
            "retired": rng.integers(0, 9, size=24),
            "edge": np.array([np.nan, -0.0, np.inf, -np.inf]),
        }
        for i in range(4)
    }
    store = ColumnStore(path, codec="zlib", block_bytes=128)
    for key, cols in points.items():
        store.put(key, cols)
    store.close()
    truth = {
        key: {name: (arr.tobytes(), str(np.ascontiguousarray(arr).dtype), arr.shape)
              for name, arr in cols.items()}
        for key, cols in points.items()
    }
    return path.read_bytes(), truth


@given(data=st.data())
@settings(max_examples=250, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_any_single_byte_flip_is_detected_or_harmless(tmp_path, reference, data):
    """Read mode over a one-byte-corrupted file: every key either reads
    back bit-identical, answers as a loud miss, or the whole open is
    refused.  Never different bytes, a different dtype, or a different
    shape."""
    clean, truth = reference
    offset = data.draw(st.integers(0, len(clean) - 1), label="offset")
    flip = data.draw(st.integers(1, 255), label="xor")
    damaged = bytearray(clean)
    damaged[offset] ^= flip
    path = tmp_path / "damaged.rcs"
    path.write_bytes(bytes(damaged))
    try:
        store = ColumnStore(path, mode="read")
    except StoreError:
        return  # refused wholesale: detected
    assert set(store.keys()) <= set(truth)
    for key, cols in truth.items():
        try:
            got = store.get(key)
        except StoreError:
            continue  # loud miss: detected
        if got is None:
            continue  # absent: a miss, recomputable
        for name, (raw, dtype, shape) in cols.items():
            if name not in got:
                continue
            arr = got[name]
            assert arr.tobytes() == raw, f"{key}/{name} served wrong bytes"
            assert str(arr.dtype) == dtype
            assert arr.shape == shape
    # read mode must not have touched the file
    assert path.read_bytes() == bytes(damaged)


@given(data=st.data())
@settings(max_examples=100, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_append_mode_quarantines_damage_and_recovers(tmp_path, reference, data):
    """Append mode over the same damage *repairs*: surviving reads stay
    bit-identical, quarantined bytes land in ``corrupt/``, and the
    repaired store accepts new appends and verifies clean after a
    compact."""
    clean, truth = reference
    offset = data.draw(st.integers(0, len(clean) - 1), label="offset")
    flip = data.draw(st.integers(1, 255), label="xor")
    damaged = bytearray(clean)
    damaged[offset] ^= flip
    path = tmp_path / "damaged.rcs"
    path.write_bytes(bytes(damaged))
    store = ColumnStore(path, mode="append")
    for key in store.keys():
        try:
            got = store.get(key)
        except StoreError:
            continue
        for name, arr in (got or {}).items():
            raw, dtype, shape = truth[key][name]
            assert arr.tobytes() == raw, f"{key}/{name} served wrong bytes"
    # the repaired store is a working store
    store.put("fresh", {"x": np.arange(5.0)})
    store.compact()
    assert store.get("fresh")["x"].tobytes() == np.arange(5.0).tobytes()
    assert store.verify() == []
